//===- BarrierRegistry.h - Module-wide barrier allocation ------*- C++ -*-===//
///
/// \file
/// Allocates the 16 architectural barrier registers across all passes and
/// functions of a module, and remembers why each one exists. Speculative-
/// reconvergence barriers are handed out from the low end and baseline
/// PDOM barriers from the high end so the deconfliction pass can identify
/// "the PDOM barrier" of a conflicting pair by origin rather than by id.
///
/// Allocation is module-global (each id used by exactly one pass site)
/// because interprocedural reconvergence makes barrier lifetimes span
/// function boundaries: a caller-side join may be live while the callee
/// runs, so reusing ids across functions is not generally safe.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_BARRIERREGISTRY_H
#define SIMTSR_TRANSFORM_BARRIERREGISTRY_H

#include "ir/Opcode.h"

#include <map>
#include <optional>
#include <string>

namespace simtsr {

enum class BarrierOrigin {
  PdomSync,    ///< Baseline post-dominator reconvergence.
  Speculative, ///< User/auto speculative-reconvergence gather barrier.
  RegionExit,  ///< Orthogonal region-exit barrier (Figure 4(d) b1).
  Interproc,   ///< Function-entry reconvergence (Section 4.4).
};

const char *getBarrierOriginName(BarrierOrigin O);

class BarrierRegistry {
public:
  /// Allocates from the low end (Speculative/RegionExit/Interproc).
  /// \returns nullopt when the register file is exhausted.
  std::optional<unsigned> allocateLow(BarrierOrigin Origin,
                                      std::string Note = "");

  /// Allocates from the high end (PdomSync).
  std::optional<unsigned> allocateHigh(BarrierOrigin Origin,
                                       std::string Note = "");

  /// Origin of \p Id; nullopt when the id was never allocated.
  std::optional<BarrierOrigin> origin(unsigned Id) const;

  /// Frees \p Id (static deconfliction deletes PDOM barriers).
  void release(unsigned Id);

  unsigned numAllocated() const {
    return static_cast<unsigned>(Allocated.size());
  }

private:
  struct Entry {
    BarrierOrigin Origin;
    std::string Note;
  };
  std::map<unsigned, Entry> Allocated;
};

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_BARRIERREGISTRY_H
