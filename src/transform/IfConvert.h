//===- IfConvert.h - Predication by if-conversion --------------*- C++ -*-===//
///
/// \file
/// Section 2 contrasts SIMT divergence handling with SIMD predication:
/// "when data-dependent conditional code is encountered on SIMD
/// architectures, predication may be used to disable execution of certain
/// data paths". This pass implements that alternative for our IR:
/// side-effect-free divergent diamonds/triangles are flattened into
/// straight-line select code, trading extra executed instructions for
/// perfect convergence — the classic rival of reconvergence-based
/// approaches for *small* conditional arms (the predication-vs-SR
/// ablation quantifies the crossover).
///
/// An arm is convertible when it is a single block with the branch as its
/// only predecessor, ends in a jump to the join block, and contains only
/// speculatable value instructions: ALU/compare/select/mov. Excluded:
/// div/rem (may trap), rand (advances the per-thread stream), memory,
/// calls, barriers, control flow.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_IFCONVERT_H
#define SIMTSR_TRANSFORM_IFCONVERT_H

namespace simtsr {

class Function;
class Module;

struct IfConvertReport {
  unsigned TrianglesConverted = 0; ///< if-then shapes.
  unsigned DiamondsConverted = 0;  ///< if-then-else shapes.

  unsigned total() const { return TrianglesConverted + DiamondsConverted; }
};

/// Flattens eligible conditionals in \p F to a fixpoint (converting an
/// inner diamond can expose an outer one). Leaves the emptied arm blocks
/// unreachable; run simplifyCfg afterwards to drop them.
IfConvertReport ifConvert(Function &F);

/// Flattens every function of \p M.
IfConvertReport ifConvert(Module &M);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_IFCONVERT_H
