//===- Coarsen.h - Thread coarsening ---------------------------*- C++ -*-===//
///
/// \file
/// Thread coarsening (Section 3): "combining work from multiple threads
/// into a single thread by converting a loop into nested loops". CUDA
/// programs often launch one variable-length task per thread; assigning
/// many tasks per thread both load-balances over time and creates the
/// nested-loop shape that Loop Merge needs (it is how the paper prepares
/// RSBench, Figure 3).
///
/// The transform wraps a single-task kernel `@f(taskId)` in a new
/// zero-parameter kernel that strides tasks across the warp:
///
///   for (task = tid; task < numTasks; task += warpSize) f(task);
///
/// Marking \p TaskKernel reconverge_entry afterwards gathers threads at
/// each task body — or the task kernel's own predict annotations become
/// reachable to the intraprocedural SR pass after inlining.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_COARSEN_H
#define SIMTSR_TRANSFORM_COARSEN_H

#include <cstdint>

namespace simtsr {

class Function;
class Module;

/// Creates `<name>.coarsened` in \p M looping \p TaskKernel over
/// \p NumTasks tasks with a warp-stride schedule. \p TaskKernel must take
/// exactly one parameter (the task id). \returns the new kernel, or null
/// when the arity is wrong.
Function *coarsenKernel(Module &M, Function *TaskKernel, int64_t NumTasks);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_COARSEN_H
