//===- SimplifyCfg.h - CFG cleanup -----------------------------*- C++ -*-===//
///
/// \file
/// Structural CFG cleanup: removes unreachable blocks, forwards branches
/// through empty jump-only trampolines, and merges straight-line block
/// chains. Inlining and edge splitting leave plenty of both behind; the
/// simulator also benefits (fewer jump issue slots).
///
/// Safe with respect to synchronization: barrier instructions move with
/// their blocks, and a trampoline is only forwarded when it carries no
/// instructions besides its jump.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_SIMPLIFYCFG_H
#define SIMTSR_TRANSFORM_SIMPLIFYCFG_H

namespace simtsr {

class Function;
class Module;

struct SimplifyReport {
  unsigned UnreachableRemoved = 0;
  unsigned TrampolinesForwarded = 0;
  unsigned ChainsMerged = 0;

  unsigned total() const {
    return UnreachableRemoved + TrampolinesForwarded + ChainsMerged;
  }
};

/// Simplifies \p F to a fixpoint. The entry block is never removed.
/// Predict labels are treated as branch targets (a block referenced by a
/// predict directive is not merged away).
SimplifyReport simplifyCfg(Function &F);

/// Simplifies every function of \p M.
SimplifyReport simplifyCfg(Module &M);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_SIMPLIFYCFG_H
