//===- Meld.cpp - DARM-style control-flow melding -----------------------------===//

#include "transform/Meld.h"

#include "analysis/Divergence.h"
#include "ir/Module.h"
#include "observe/Remark.h"

#include <map>

using namespace simtsr;

//===----------------------------------------------------------------------===//
// Fingerprints and pairability
//===----------------------------------------------------------------------===//

uint64_t simtsr::meldFingerprint(const Instruction &I) {
  // Shape only: opcode, dst-ness, operand kinds. 5 operand kinds fit in 3
  // bits; no real instruction has more than ~18 operands, so the shape
  // packs losslessly into 64 bits for everything the pairable set allows
  // (fixed arity <= 3).
  uint64_t FP = static_cast<uint64_t>(I.opcode());
  FP = (FP << 1) | (I.hasDst() ? 1 : 0);
  FP = (FP << 5) | (I.numOperands() & 31);
  for (const Operand &O : I.operands())
    FP = (FP << 3) | static_cast<uint64_t>(O.kind());
  // Calls additionally fingerprint the callee by name (FNV-1a folded in),
  // so alignment never pairs calls to different functions: a melded pair
  // must collapse to ONE call instruction, and the callee operand cannot
  // be fed through a select.
  if (I.opcode() == Opcode::Call && I.numOperands() >= 1 &&
      I.operand(0).isFunc()) {
    uint64_t H = 1469598103934665603ull;
    for (const char C : I.operand(0).getFunc()->name()) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ull;
    }
    FP ^= H | 1; // Never a no-op fold.
  }
  return FP;
}

bool simtsr::isMeldableInstruction(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Min:
  case Opcode::Max:
  case Opcode::Not:
  case Opcode::Neg:
  case Opcode::Mov:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::Select:
  case Opcode::Tid:
  case Opcode::LaneId:
  case Opcode::WarpSize:
  case Opcode::Nop:
    return true;
  // Per-thread effects that are exact under melding: each executing
  // thread performs its own side's access/draw exactly once, in its own
  // program order (alignment is monotonic), with its own operand values
  // (fed by selects). Div/Rem trap on the same per-thread inputs either
  // way.
  case Opcode::Rand:
  case Opcode::RandRange:
  case Opcode::Load:
  case Opcode::Store:
    return true;
  // AtomicAdd merges the two arms' lane orderings into one instruction
  // execution — the returned old values could interleave differently
  // than in the divergent original, so it stays in a guarded stub.
  // Barrier ops and annotations likewise; calls have their own predicate
  // (isMeldableCall) because safety depends on the callee body.
  default:
    return false;
  }
}

bool simtsr::isMeldableCall(const Instruction &I) {
  if (I.opcode() != Opcode::Call || I.numOperands() < 1 ||
      !I.operand(0).isFunc())
    return false;
  const Function *Callee = I.operand(0).getFunc();
  if (!Callee || Callee->size() == 0)
    return false;
  // The simulator pushes one frame per thread with per-thread argument
  // values, so the call itself is exact under a merged mask. The callee
  // body must then be free of warp-shared state: only meldable
  // instructions and plain control flow. Nested calls stay out — one
  // level is enough for the Figure 2(c) pattern, and it keeps the check
  // non-recursive.
  for (const BasicBlock *BB : *Callee)
    for (size_t K = 0; K < BB->size(); ++K) {
      const Instruction &CI = BB->inst(K);
      switch (CI.opcode()) {
      case Opcode::Br:
      case Opcode::Jmp:
      case Opcode::Ret:
        continue;
      default:
        if (!isMeldableInstruction(CI))
          return false;
      }
    }
  return true;
}

std::vector<MeldAlignStep>
simtsr::alignFingerprints(const std::vector<uint64_t> &Then,
                          const std::vector<uint64_t> &Else,
                          const std::vector<bool> &ThenPairable,
                          const std::vector<bool> &ElsePairable) {
  const size_t N = Then.size(), M = Else.size();
  // Needleman-Wunsch, maximizing MatchScore per pair minus GapPenalty per
  // gapped instruction. Only equal fingerprints of pairable instructions
  // may match, so this degenerates to a gap-weighted LCS — exactly the
  // DARM alignment over shape fingerprints.
  constexpr int64_t MatchScore = 3, GapPenalty = 1;
  std::vector<int64_t> Score((N + 1) * (M + 1), 0);
  const auto At = [&](size_t I, size_t J) -> int64_t & {
    return Score[I * (M + 1) + J];
  };
  for (size_t I = 0; I <= N; ++I)
    At(I, 0) = -static_cast<int64_t>(I) * GapPenalty;
  for (size_t J = 0; J <= M; ++J)
    At(0, J) = -static_cast<int64_t>(J) * GapPenalty;
  for (size_t I = 1; I <= N; ++I) {
    for (size_t J = 1; J <= M; ++J) {
      int64_t Best = At(I - 1, J) - GapPenalty;
      Best = std::max(Best, At(I, J - 1) - GapPenalty);
      if (Then[I - 1] == Else[J - 1] && ThenPairable[I - 1] &&
          ElsePairable[J - 1])
        Best = std::max(Best, At(I - 1, J - 1) + MatchScore);
      At(I, J) = Best;
    }
  }

  // Traceback, preferring pairs, then then-gaps (deterministic).
  std::vector<MeldAlignStep> Rev;
  size_t I = N, J = M;
  while (I > 0 || J > 0) {
    if (I > 0 && J > 0 && Then[I - 1] == Else[J - 1] && ThenPairable[I - 1] &&
        ElsePairable[J - 1] && At(I, J) == At(I - 1, J - 1) + MatchScore) {
      Rev.push_back({I - 1, J - 1});
      --I;
      --J;
    } else if (I > 0 && At(I, J) == At(I - 1, J) - GapPenalty) {
      Rev.push_back({I - 1, MeldGap});
      --I;
    } else {
      Rev.push_back({MeldGap, J - 1});
      --J;
    }
  }
  return {Rev.rbegin(), Rev.rend()};
}

//===----------------------------------------------------------------------===//
// The meld transformation
//===----------------------------------------------------------------------===//

namespace {

/// Fresh block name derived from \p Base; kernels name blocks freely, so
/// collisions are checked against the function.
std::string freshBlockName(Function &F, const std::string &Base) {
  if (!F.blockByName(Base))
    return Base;
  for (unsigned Salt = 2;; ++Salt) {
    std::string Name = Base + "_" + std::to_string(Salt);
    if (!F.blockByName(Name))
      return Name;
  }
}

/// Rewrites \p Ops through \p Renamed (arm-local defs became fresh temps).
std::vector<Operand> renameOperands(const Instruction &I,
                                    const std::map<unsigned, unsigned> &Renamed) {
  std::vector<Operand> Ops;
  Ops.reserve(I.numOperands());
  for (const Operand &O : I.operands()) {
    if (O.isReg()) {
      auto It = Renamed.find(O.getReg());
      Ops.push_back(It == Renamed.end() ? O : Operand::reg(It->second));
    } else {
      Ops.push_back(O);
    }
  }
  return Ops;
}

/// Why a divergent diamond was rejected; empty string = meldable.
struct MeldCandidate {
  BasicBlock *Then = nullptr;
  BasicBlock *Else = nullptr;
  BasicBlock *Join = nullptr;
  std::string Reject;
};

/// True when \p Arm is a single-entry straight arm from \p Entry into some
/// join (its jmp target).
BasicBlock *armJoin(const BasicBlock *Arm, const BasicBlock *Entry) {
  if (Arm->predecessors().size() != 1 || Arm->predecessors()[0] != Entry)
    return nullptr;
  if (!Arm->hasTerminator() || Arm->terminator().opcode() != Opcode::Jmp)
    return nullptr;
  return Arm->terminator().operand(0).getBlock();
}

/// Instructions that may not appear anywhere in a melded arm, even in a
/// stub: barrier state is warp-shared and timing-sensitive, so changing
/// the CFG around it needs the barrier passes' cost models, not this one.
bool armInstructionAllowed(const Instruction &I) {
  if (isBarrierOp(I.opcode()))
    return false;
  switch (I.opcode()) {
  case Opcode::WarpSync:
  case Opcode::Predict:
    return false;
  default:
    return true;
  }
}

MeldCandidate classifyCandidate(Function &F, BasicBlock *Entry) {
  MeldCandidate C;
  const Instruction &Term = Entry->terminator();
  C.Then = Term.operand(1).getBlock();
  C.Else = Term.operand(2).getBlock();
  if (C.Then == C.Else || C.Then == Entry || C.Else == Entry) {
    C.Reject = "not a diamond";
    return C;
  }
  BasicBlock *ThenJoin = armJoin(C.Then, Entry);
  BasicBlock *ElseJoin = armJoin(C.Else, Entry);
  if (!ThenJoin || !ElseJoin || ThenJoin != ElseJoin) {
    C.Reject = "arms are not single-entry regions into one join";
    return C;
  }
  if (ThenJoin == C.Then || ThenJoin == C.Else) {
    C.Reject = "join re-enters an arm";
    return C;
  }
  C.Join = ThenJoin;
  for (const BasicBlock *Arm : {C.Then, C.Else})
    for (size_t I = 0; I + 1 < Arm->size(); ++I)
      if (!armInstructionAllowed(Arm->inst(I))) {
        C.Reject = std::string("arm contains ") +
                   getOpcodeName(Arm->inst(I).opcode());
        return C;
      }
  // Any reference to an arm besides the entry terminator (a predict label,
  // an unrelated branch) pins the block in place.
  for (const BasicBlock *BB : F)
    for (size_t I = 0; I < BB->size(); ++I) {
      if (BB == Entry && I + 1 == BB->size())
        continue;
      for (const Operand &O : BB->inst(I).operands())
        if (O.isBlock() && (O.getBlock() == C.Then || O.getBlock() == C.Else)) {
          C.Reject = "arm is referenced outside the branch";
          return C;
        }
    }
  return C;
}

/// Emits the melded replacement for one accepted diamond. Returns the
/// stats delta.
void meldDiamond(Function &F, BasicBlock *Entry, const MeldCandidate &C,
                 const std::vector<MeldAlignStep> &Steps,
                 MeldReport &Report) {
  BasicBlock *Then = C.Then, *Else = C.Else, *Join = C.Join;
  const Operand Cond = Entry->terminator().operand(0);

  // The predicate must stay live through the whole melded chain, but an
  // arm may redefine the condition register; copy it to a fresh temp when
  // either arm writes it (the final register merges run last).
  Operand Pred = Cond;
  if (Cond.isReg()) {
    bool Redefined = false;
    for (const BasicBlock *Arm : {Then, Else})
      for (size_t I = 0; I + 1 < Arm->size(); ++I)
        if (Arm->inst(I).hasDst() && Arm->inst(I).dst() == Cond.getReg())
          Redefined = true;
    if (Redefined) {
      const unsigned P = F.createReg();
      Entry->insertBeforeTerminator(Instruction(Opcode::Mov, P, {Cond}));
      Pred = Operand::reg(P);
    }
  }

  const std::string Base = Entry->name();
  unsigned NameCounter = 0;
  const auto NewBlockAfter = [&](BasicBlock *After, const char *Tag) {
    return F.createBlockAfter(
        After, freshBlockName(F, Base + "." + Tag +
                                       std::to_string(NameCounter)));
  };

  BasicBlock *Cur = NewBlockAfter(Entry, "meld");
  BasicBlock *First = Cur;
  std::map<unsigned, unsigned> ThenMap, ElseMap;

  // Per-side defs write fresh temps so nothing architectural changes until
  // the final merges; per-side reads go through the side's rename map.
  const auto EmitSide = [&](BasicBlock *To, const Instruction &I,
                            std::map<unsigned, unsigned> &SideMap) {
    std::vector<Operand> Ops = renameOperands(I, SideMap);
    unsigned Dst = NoRegister;
    if (I.hasDst()) {
      Dst = F.createReg();
      SideMap[I.dst()] = Dst;
    }
    To->append(Instruction(I.opcode(), Dst, std::move(Ops)));
  };

  size_t S = 0;
  while (S < Steps.size()) {
    if (Steps[S].isPair()) {
      // A run of melded pairs extends the current merged block.
      const Instruction &TI = Then->inst(Steps[S].ThenIndex);
      const Instruction &EI = Else->inst(Steps[S].ElseIndex);
      const std::vector<Operand> TOps = renameOperands(TI, ThenMap);
      const std::vector<Operand> EOps = renameOperands(EI, ElseMap);
      std::vector<Operand> Ops;
      Ops.reserve(TOps.size());
      for (size_t I = 0; I < TOps.size(); ++I) {
        if (TOps[I] == EOps[I]) {
          Ops.push_back(TOps[I]);
          continue;
        }
        // Differing feeds: each thread selects its own side's value.
        const unsigned Sel = F.createReg();
        Cur->append(Instruction(Opcode::Select, Sel,
                                {Pred, TOps[I], EOps[I]}));
        ++Report.SelectsInserted;
        Ops.push_back(Operand::reg(Sel));
      }
      unsigned Dst = NoRegister;
      if (TI.hasDst()) {
        Dst = F.createReg();
        ThenMap[TI.dst()] = Dst;
        ElseMap[EI.dst()] = Dst;
      }
      Cur->append(Instruction(TI.opcode(), Dst, std::move(Ops)));
      ++Report.PairsMelded;
      ++S;
      continue;
    }
    // A run of gaps becomes one divergent stub diamond (or triangle when
    // only one side has residue).
    std::vector<size_t> TGap, EGap;
    while (S < Steps.size() && !Steps[S].isPair()) {
      if (Steps[S].ThenIndex != MeldGap)
        TGap.push_back(Steps[S].ThenIndex);
      else
        EGap.push_back(Steps[S].ElseIndex);
      ++S;
    }
    BasicBlock *Next = NewBlockAfter(Cur, "meld");
    BasicBlock *TStub = nullptr, *EStub = nullptr;
    if (!TGap.empty()) {
      TStub = NewBlockAfter(Cur, "mstub.t");
      for (size_t Idx : TGap)
        EmitSide(TStub, Then->inst(Idx), ThenMap);
      TStub->append(Instruction(Opcode::Jmp, NoRegister,
                                {Operand::block(Next)}));
      ++Report.StubsEmitted;
    }
    if (!EGap.empty()) {
      EStub = NewBlockAfter(TStub ? TStub : Cur, "mstub.e");
      for (size_t Idx : EGap)
        EmitSide(EStub, Else->inst(Idx), ElseMap);
      EStub->append(Instruction(Opcode::Jmp, NoRegister,
                                {Operand::block(Next)}));
      ++Report.StubsEmitted;
    }
    Cur->append(Instruction(Opcode::Br, NoRegister,
                            {Pred, Operand::block(TStub ? TStub : Next),
                             Operand::block(EStub ? EStub : Next)}));
    ++NameCounter;
    Cur = Next;
  }

  // Final merges: commit each architecturally-written register from its
  // side temps. Each merge reads only the predicate, side temps and its
  // own register, so emission order is free.
  std::map<unsigned, std::pair<unsigned, unsigned>> Merged;
  for (const auto &[Reg, Temp] : ThenMap)
    Merged[Reg] = {Temp, Reg};
  for (const auto &[Reg, Temp] : ElseMap) {
    auto It = Merged.find(Reg);
    if (It == Merged.end())
      Merged[Reg] = {Reg, Temp};
    else
      It->second.second = Temp;
  }
  for (const auto &[Reg, Vals] : Merged) {
    if (Vals.first == Vals.second) {
      Cur->append(Instruction(Opcode::Mov, Reg, {Operand::reg(Vals.first)}));
      continue;
    }
    Cur->append(Instruction(Opcode::Select, Reg,
                            {Pred, Operand::reg(Vals.first),
                             Operand::reg(Vals.second)}));
    ++Report.SelectsInserted;
  }
  Cur->append(Instruction(Opcode::Jmp, NoRegister, {Operand::block(Join)}));

  // Retarget the entry into the chain and drop the old arms (now
  // reference-free: classifyCandidate proved the branch held the only
  // references).
  Entry->instructions().back() =
      Instruction(Opcode::Jmp, NoRegister, {Operand::block(First)});
  F.removeBlock(Then);
  F.removeBlock(Else);
  F.recomputePreds();

  ++Report.BranchesMelded;
}

/// One scan over \p F: melds the first eligible divergent diamond found.
/// \returns true when the CFG changed (divergence info is then stale).
bool meldOnce(Function &F, const DivergenceAnalysis &DA,
              const MeldOptions &Opts, MeldReport &Report) {
  // Skip remarks are buffered and only flushed when the whole scan found
  // nothing to meld — i.e. exactly once, in the fixpoint's final round.
  // Mutating rounds rescan the same branches, and re-remarking them every
  // round would drown the stream in duplicates.
  std::vector<observe::Remark> Pending;
  for (BasicBlock *Entry : F) {
    if (!Entry->hasTerminator() ||
        Entry->terminator().opcode() != Opcode::Br)
      continue;
    if (!DA.isDivergentBranch(Entry))
      continue;
    ++Report.BranchesExamined;

    const auto Skip = [&](const std::string &Why,
                          std::vector<std::pair<std::string, std::string>>
                              Args = {}) {
      ++Report.Skipped;
      if (observe::remarksEnabled()) {
        observe::Remark R;
        R.Pass = "meld";
        R.Kind = observe::RemarkKind::Skipped;
        R.Function = F.name();
        R.Block = Entry->name();
        R.Message = Why;
        R.Args = std::move(Args);
        Pending.push_back(std::move(R));
      }
    };

    MeldCandidate C = classifyCandidate(F, Entry);
    if (!C.Reject.empty()) {
      Skip(C.Reject);
      continue;
    }

    // Fingerprint both arms (terminators excluded) and align.
    std::vector<uint64_t> TFp, EFp;
    std::vector<bool> TPair, EPair;
    for (size_t I = 0; I + 1 < C.Then->size(); ++I) {
      const Instruction &TI = C.Then->inst(I);
      TFp.push_back(meldFingerprint(TI));
      TPair.push_back(isMeldableInstruction(TI) || isMeldableCall(TI));
    }
    for (size_t I = 0; I + 1 < C.Else->size(); ++I) {
      const Instruction &EI = C.Else->inst(I);
      EFp.push_back(meldFingerprint(EI));
      EPair.push_back(isMeldableInstruction(EI) || isMeldableCall(EI));
    }
    const std::vector<MeldAlignStep> Steps =
        alignFingerprints(TFp, EFp, TPair, EPair);
    unsigned Pairs = 0;
    for (const MeldAlignStep &St : Steps)
      if (St.isPair())
        ++Pairs;
    if (Pairs < Opts.MinPairs) {
      Skip("pairs below min-pairs",
           {{"pairs", std::to_string(Pairs)},
            {"min-pairs", std::to_string(Opts.MinPairs)},
            {"then-len", std::to_string(TFp.size())},
            {"else-len", std::to_string(EFp.size())}});
      continue;
    }

    const unsigned StubsBefore = Report.StubsEmitted;
    const unsigned SelectsBefore = Report.SelectsInserted;
    meldDiamond(F, Entry, C, Steps, Report);
    if (observe::remarksEnabled())
      observe::emitRemark(
          "meld", observe::RemarkKind::Applied, F.name(), Entry->name(),
          "melded divergent branch",
          {{"pairs", std::to_string(Pairs)},
           {"then-residue", std::to_string(TFp.size() - Pairs)},
           {"else-residue", std::to_string(EFp.size() - Pairs)},
           {"stubs", std::to_string(Report.StubsEmitted - StubsBefore)},
           {"selects",
            std::to_string(Report.SelectsInserted - SelectsBefore)}});
    return true;
  }
  for (observe::Remark &R : Pending)
    observe::emitRemark(std::move(R));
  return false;
}

} // namespace

MeldReport simtsr::applyControlFlowMeld(Function &F,
                                        const DivergenceAnalysis &DA,
                                        const MeldOptions &Opts) {
  MeldReport Report;
  // Single-shot entry point: one analysis, one application round. The
  // module driver below owns the fixpoint (divergence must be recomputed
  // after every CFG change).
  meldOnce(F, DA, Opts, Report);
  return Report;
}

MeldReport simtsr::applyControlFlowMeld(Module &M, const MeldOptions &Opts) {
  MeldReport Report;
  for (size_t FI = 0; FI < M.size(); ++FI) {
    Function &F = *M.function(FI);
    for (unsigned Iter = 0; Iter < Opts.MaxIterations; ++Iter) {
      // Divergence facts go stale on every CFG change; recompute per
      // round. Candidate counters would double-count rescanned branches,
      // so only the mutating round's numbers accumulate.
      ModuleDivergenceInfo MDI(M);
      MeldReport Round;
      if (!meldOnce(F, MDI.forFunction(&F), Opts, Round)) {
        // Final round: the examined/skip counts of the fixpoint scan are
        // the ones worth reporting (every remaining branch got a remark).
        Report.BranchesExamined += Round.BranchesExamined;
        Report.Skipped += Round.Skipped;
        break;
      }
      Report.BranchesMelded += Round.BranchesMelded;
      Report.PairsMelded += Round.PairsMelded;
      Report.StubsEmitted += Round.StubsEmitted;
      Report.SelectsInserted += Round.SelectsInserted;
    }
  }
  return Report;
}
