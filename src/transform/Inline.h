//===- Inline.h - Function inlining ----------------------------*- C++ -*-===//
///
/// \file
/// Call-site inlining. Section 6 of the paper notes the interaction with
/// speculative reconvergence: inlining a function that is called from
/// several divergent paths removes the common PC at which threads could
/// have reconverged, destroying the Figure 2(c) opportunity — while
/// outlining (the inverse refactoring) creates it. The extension tests
/// and the Section 6 bench demonstrate both directions.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_INLINE_H
#define SIMTSR_TRANSFORM_INLINE_H

namespace simtsr {

class BasicBlock;
class Function;
class Module;

/// Inlines the call at instruction \p Index of \p BB (which must be a
/// Call). \returns false when the callee is recursive or is the caller
/// itself. On success the call is replaced by the callee's blocks (with
/// registers remapped into the caller's space) and \p BB is split after
/// the former call site.
bool inlineCallSite(Function &Caller, BasicBlock *BB, unsigned Index);

/// Inlines every call to \p Callee across the module. \returns the number
/// of call sites inlined.
unsigned inlineAllCalls(Module &M, Function *Callee);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_INLINE_H
