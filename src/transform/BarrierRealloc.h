//===- BarrierRealloc.h - Barrier-register re-allocation -------*- C++ -*-===//
///
/// \file
/// The Volta ISA exposes 16 barrier registers per warp, and the paper's
/// static deconfliction explicitly counts "barrier registers used" as a
/// cost. Our pipeline hands out module-globally unique ids, which is
/// correct but wasteful: within one function, two barriers that are
/// strictly ordered can share a register. This pass recolours each
/// function's barriers greedily over that interference graph, shrinking
/// register pressure.
///
/// Two barriers are considered orderable only when every op of one
/// strictly dominates every op of the other AND a classic
/// (membership-clearing) wait of the earlier barrier dominates all ops of
/// the later one. Statically disjoint joined ranges are NOT sufficient:
/// under independent thread scheduling a lane can run arbitrarily far
/// ahead of its warp-mates, so one lane can sit inside the first
/// barrier's range while another executes the second barrier's join on
/// the same physical register, clobbering the participant mask and
/// deadlocking the warp.
///
/// Cross-function sharing is *not* performed: under independent thread
/// scheduling, threads of one warp can occupy two functions at once, so
/// barriers of different functions are conservatively co-live (barrier
/// registers are warp-global state).
///
/// Run after deconfliction and verification as a final lowering step; the
/// BarrierRegistry's id->origin map is invalidated by design.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_BARRIERREALLOC_H
#define SIMTSR_TRANSFORM_BARRIERREALLOC_H

#include <map>
#include <string>
#include <vector>

namespace simtsr {

class Function;
class Module;

struct ReallocReport {
  unsigned BarriersBefore = 0; ///< Distinct ids used before recolouring.
  unsigned BarriersAfter = 0;  ///< Distinct ids used after.
  /// Per function: old id -> new id.
  std::map<std::string, std::map<unsigned, unsigned>> Renaming;
};

/// Recolours barrier ids within \p F starting from id \p FirstColor.
/// \returns the renaming (old -> new). Barriers with overlapping joined
/// ranges keep distinct ids.
std::map<unsigned, unsigned> reallocateBarriers(Function &F,
                                                unsigned FirstColor = 0);

/// Recolours every function; functions receive disjoint id ranges
/// stacked from 0 upward (cross-function barriers stay distinct).
ReallocReport reallocateBarriers(Module &M);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_BARRIERREALLOC_H
