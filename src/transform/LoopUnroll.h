//===- LoopUnroll.h - Partial loop unrolling -------------------*- C++ -*-===//
///
/// \file
/// Partial unrolling by body replication: the loop's blocks are cloned
/// Factor-1 times and chained, so one pass around the rewritten loop runs
/// up to Factor original iterations (every clone keeps its own exit
/// check, so trip counts need not be known or divisible).
///
/// Section 6 of the paper discusses the interaction with Loop Merge: with
/// the reconvergence label kept in the *first* body copy only,
/// synchronization executes once per Factor iterations, cutting the
/// barrier overhead of speculative reconvergence.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_TRANSFORM_LOOPUNROLL_H
#define SIMTSR_TRANSFORM_LOOPUNROLL_H

namespace simtsr {

class Function;
class Loop;

/// Partially unrolls \p L by \p Factor (>= 2). Returns false (leaving the
/// function untouched) when the loop is not unrollable: it must have a
/// single latch and must not contain barrier instructions. Predict
/// directives inside the loop stay in the original blocks only, so a
/// subsequent SR pass gathers once per Factor iterations.
/// The loop-info object is invalidated on success.
bool unrollLoop(Function &F, const Loop &L, unsigned Factor);

} // namespace simtsr

#endif // SIMTSR_TRANSFORM_LOOPUNROLL_H
