//===- SimplifyCfg.cpp - CFG cleanup ---------------------------------------------===//

#include "transform/SimplifyCfg.h"

#include "ir/CFGUtils.h"
#include "ir/Module.h"

#include <set>

using namespace simtsr;

namespace {

/// Blocks referenced by any block operand anywhere in \p F (branch targets
/// and predict labels).
std::set<const BasicBlock *> referencedBlocks(const Function &F) {
  std::set<const BasicBlock *> Refs;
  for (const BasicBlock *BB : F)
    for (const Instruction &I : BB->instructions())
      for (const Operand &O : I.operands())
        if (O.isBlock())
          Refs.insert(O.getBlock());
  return Refs;
}

/// True when \p BB consists of nothing but `jmp target`.
bool isTrampoline(const BasicBlock *BB) {
  return BB->size() == 1 && BB->inst(0).opcode() == Opcode::Jmp;
}

/// Follows a chain of trampolines from \p BB; \returns the final target,
/// or nullptr when the chain cycles.
BasicBlock *resolveTrampoline(BasicBlock *BB) {
  std::set<const BasicBlock *> Seen;
  BasicBlock *Current = BB;
  while (isTrampoline(Current)) {
    if (!Seen.insert(Current).second)
      return nullptr; // Cycle of jumps (an intentional infinite loop).
    Current = Current->terminator().operand(0).getBlock();
  }
  return Current;
}

bool removeUnreachable(Function &F, SimplifyReport &Report) {
  F.recomputePreds();
  std::vector<bool> Reachable = blocksReachableFrom(F, F.entry());
  std::set<const BasicBlock *> Refs = referencedBlocks(F);
  std::vector<BasicBlock *> Doomed;
  for (BasicBlock *BB : F)
    if (!Reachable[BB->number()] && !Refs.count(BB))
      Doomed.push_back(BB);
  for (BasicBlock *BB : Doomed) {
    F.removeBlock(BB);
    ++Report.UnreachableRemoved;
  }
  return !Doomed.empty();
}

bool forwardTrampolines(Function &F, SimplifyReport &Report) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    for (Instruction &I : BB->instructions()) {
      for (unsigned OpIdx = 0; OpIdx < I.numOperands(); ++OpIdx) {
        Operand &O = I.operand(OpIdx);
        if (!O.isBlock())
          continue;
        BasicBlock *T = O.getBlock();
        if (!isTrampoline(T) || T == BB)
          continue;
        BasicBlock *Final = resolveTrampoline(T);
        if (!Final || Final == T)
          continue;
        O.setBlock(Final);
        ++Report.TrampolinesForwarded;
        Changed = true;
      }
    }
  }
  if (Changed)
    F.recomputePreds();
  return Changed;
}

bool mergeChains(Function &F, SimplifyReport &Report) {
  F.recomputePreds();
  std::set<const BasicBlock *> Refs;
  // Only non-terminator references (predict labels) pin a block: the
  // merge removes the one terminator edge itself.
  for (const BasicBlock *BB : F)
    for (const Instruction &I : BB->instructions())
      if (!I.isTerminator())
        for (const Operand &O : I.operands())
          if (O.isBlock())
            Refs.insert(O.getBlock());

  for (BasicBlock *BB : F) {
    if (!BB->hasTerminator() || BB->terminator().opcode() != Opcode::Jmp)
      continue;
    BasicBlock *Succ = BB->terminator().operand(0).getBlock();
    if (Succ == BB || Succ == F.entry() || Refs.count(Succ))
      continue;
    if (Succ->predecessors().size() != 1)
      continue;
    // Splice Succ into BB.
    auto &Insts = BB->instructions();
    Insts.pop_back(); // the jmp
    for (Instruction &I : Succ->instructions())
      Insts.push_back(std::move(I));
    Succ->instructions().clear();
    F.removeBlock(Succ);
    ++Report.ChainsMerged;
    return true; // Restart: iteration state is invalidated.
  }
  return false;
}

} // namespace

SimplifyReport simtsr::simplifyCfg(Function &F) {
  SimplifyReport Report;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Changed |= forwardTrampolines(F, Report);
    Changed |= removeUnreachable(F, Report);
    Changed |= mergeChains(F, Report);
  }
  F.recomputePreds();
  return Report;
}

SimplifyReport simtsr::simplifyCfg(Module &M) {
  SimplifyReport Report;
  for (size_t I = 0; I < M.size(); ++I) {
    SimplifyReport One = simplifyCfg(*M.function(I));
    Report.UnreachableRemoved += One.UnreachableRemoved;
    Report.TrampolinesForwarded += One.TrampolinesForwarded;
    Report.ChainsMerged += One.ChainsMerged;
  }
  return Report;
}
