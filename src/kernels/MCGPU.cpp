//===- MCGPU.cpp - X-ray photon transport (CT imaging) -------------------------===//
///
/// \file
/// MC-GPU [Badal & Badano]: Monte Carlo x-ray transport through the human
/// anatomy. Each photon undergoes a random sequence of interactions:
/// Compton scatter (expensive sampling), Rayleigh scatter (moderate) or
/// photoelectric absorption (terminates the photon). The interaction type
/// diverges every step; the Compton arm is the reconvergence target.
///
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuild.h"
#include "kernels/Workload.h"
#include "sim/Warp.h"

using namespace simtsr;
using namespace simtsr::kernelbuild;

Workload simtsr::makeMCGPU(double Scale) {
  Workload W;
  W.Name = "mc-gpu";
  W.Description = "Monte Carlo x-ray transport for CT imaging "
                  "(divergent interaction types)";
  W.Pattern = DivergencePattern::IterationDelay;
  W.KernelName = "mcgpu";
  W.Latency = LatencyModel::computeBound();
  W.Scale = Scale;

  const int64_t Photons = scaled(10, Scale);
  const int64_t ComptonPct = 35;  // P(Compton) per interaction.
  const int64_t RayleighPct = 65; // P(Compton or Rayleigh).
  const int64_t ComptonOps = 40;  // Klein-Nishina sampling weight.
  const int64_t RayleighOps = 8;

  W.M = std::make_unique<Module>();
  W.M->setGlobalMemoryWords(1 << 12);
  Function *F = W.M->createFunction("mcgpu", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Source = F->createBlock("source");
  BasicBlock *Interact = F->createBlock("interact");
  BasicBlock *Compton = F->createBlock("compton");
  BasicBlock *CheckRayleigh = F->createBlock("check_rayleigh");
  BasicBlock *Rayleigh = F->createBlock("rayleigh");
  BasicBlock *Absorbed = F->createBlock("absorbed");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned Photon = B.mov(Operand::imm(0));
  unsigned Dose = B.mov(Operand::imm(1));
  B.predict(Compton);
  B.jmp(Source);

  // Source: emit a fresh photon.
  B.setInsertBlock(Source);
  unsigned EnergyInit = B.randRange(Operand::imm(20), Operand::imm(140));
  unsigned Energy = B.mov(Operand::reg(EnergyInit));
  B.jmp(Interact);

  // Interaction site: sample the interaction type.
  B.setInsertBlock(Interact);
  unsigned Roll = B.randRange(Operand::imm(0), Operand::imm(100));
  unsigned IsCompton = B.cmpLT(Operand::reg(Roll), Operand::imm(ComptonPct));
  B.br(Operand::reg(IsCompton), Compton, CheckRayleigh);

  B.setInsertBlock(Compton);
  unsigned X = B.add(Operand::reg(Dose), Operand::reg(Energy));
  X = emitAluChain(B, X, static_cast<int>(ComptonOps), 134775813);
  emitMove(Compton, Dose, X);
  unsigned ELoss = B.shr(Operand::reg(Energy), Operand::imm(1));
  emitMove(Compton, Energy, ELoss);
  B.jmp(Interact);

  B.setInsertBlock(CheckRayleigh);
  unsigned IsRayleigh =
      B.cmpLT(Operand::reg(Roll), Operand::imm(RayleighPct));
  B.br(Operand::reg(IsRayleigh), Rayleigh, Absorbed);

  B.setInsertBlock(Rayleigh);
  unsigned Y = B.add(Operand::reg(Dose), Operand::imm(13));
  Y = emitAluChain(B, Y, static_cast<int>(RayleighOps), 214013);
  emitMove(Rayleigh, Dose, Y);
  B.jmp(Interact);

  // Absorption ends the photon; move to the next one.
  B.setInsertBlock(Absorbed);
  unsigned Z = B.xorOp(Operand::reg(Dose), Operand::reg(Energy));
  emitMove(Absorbed, Dose, Z);
  unsigned PNext = B.add(Operand::reg(Photon), Operand::imm(1));
  emitMove(Absorbed, Photon, PNext);
  unsigned Done = B.cmpGE(Operand::reg(Photon), Operand::imm(Photons));
  B.br(Operand::reg(Done), Exit, Source);

  B.setInsertBlock(Exit);
  unsigned Slot = B.add(Operand::reg(Tid), Operand::imm(ResultBase));
  B.store(Operand::reg(Slot), Operand::reg(Dose));
  B.ret();

  F->recomputePreds();
  return W;
}
