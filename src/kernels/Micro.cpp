//===- Micro.cpp - Figure 2(c) validation microbenchmark ------------------------===//
///
/// \file
/// The paper found no application exhibiting the common-function-call
/// pattern in the wild and validated it with microbenchmarks
/// (Section 5.1); this is ours. A divergent three-way dispatch calls the
/// same expensive helper from every arm with different preprocessing, so
/// post-dominator analysis never sees the helper body as a reconvergence
/// point, but the interprocedural pass does.
///
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuild.h"
#include "kernels/Workload.h"
#include "sim/Warp.h"

using namespace simtsr;
using namespace simtsr::kernelbuild;

Workload simtsr::makeMicroCommonCall(double Scale) {
  Workload W;
  W.Name = "micro-commoncall";
  W.Description = "Common function call across divergent paths "
                  "(Figure 2(c) validation microbenchmark)";
  W.Pattern = DivergencePattern::CommonCall;
  W.KernelName = "microcc";
  W.Latency = LatencyModel::computeBound();
  W.Scale = Scale;

  const int64_t Rounds = scaled(12, Scale);
  const int64_t HelperOps = 40;

  W.M = std::make_unique<Module>();
  W.M->setGlobalMemoryWords(1 << 12);

  Function *Heavy = W.M->createFunction("heavy", 1);
  Heavy->setReconvergeAtEntry(true);
  {
    IRBuilder B(Heavy);
    B.startBlock("entry");
    unsigned X = B.add(Operand::reg(0), Operand::imm(0xbeef));
    X = emitAluChain(B, X, static_cast<int>(HelperOps), 6364136223846793005);
    B.ret(Operand::reg(X));
  }

  Function *F = W.M->createFunction("microcc", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Dispatch = F->createBlock("dispatch");
  BasicBlock *ArmA = F->createBlock("arm_a");
  BasicBlock *CheckB = F->createBlock("check_b");
  BasicBlock *ArmB = F->createBlock("arm_b");
  BasicBlock *ArmC = F->createBlock("arm_c");
  BasicBlock *Merge = F->createBlock("merge");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned Round = B.mov(Operand::imm(0));
  unsigned Acc = B.mov(Operand::imm(1));
  B.jmp(Dispatch);

  B.setInsertBlock(Dispatch);
  unsigned Roll = B.randRange(Operand::imm(0), Operand::imm(3));
  unsigned IsA = B.cmpEQ(Operand::reg(Roll), Operand::imm(0));
  B.br(Operand::reg(IsA), ArmA, CheckB);

  B.setInsertBlock(ArmA);
  unsigned PreA = B.mul(Operand::reg(Acc), Operand::imm(3));
  unsigned RA = B.call(Heavy, {Operand::reg(PreA)});
  emitMove(ArmA, Acc, RA);
  B.jmp(Merge);

  B.setInsertBlock(CheckB);
  unsigned IsB = B.cmpEQ(Operand::reg(Roll), Operand::imm(1));
  B.br(Operand::reg(IsB), ArmB, ArmC);

  B.setInsertBlock(ArmB);
  unsigned PreB = B.add(Operand::reg(Acc), Operand::imm(77));
  unsigned RB = B.call(Heavy, {Operand::reg(PreB)});
  emitMove(ArmB, Acc, RB);
  B.jmp(Merge);

  B.setInsertBlock(ArmC);
  unsigned PreC = B.xorOp(Operand::reg(Acc), Operand::imm(0x5a5a));
  unsigned PreC2 = B.sub(Operand::reg(PreC), Operand::imm(9));
  unsigned RC = B.call(Heavy, {Operand::reg(PreC2)});
  emitMove(ArmC, Acc, RC);
  B.jmp(Merge);

  B.setInsertBlock(Merge);
  unsigned RNext = B.add(Operand::reg(Round), Operand::imm(1));
  emitMove(Merge, Round, RNext);
  unsigned Done = B.cmpGE(Operand::reg(Round), Operand::imm(Rounds));
  B.br(Operand::reg(Done), Exit, Dispatch);

  B.setInsertBlock(Exit);
  unsigned Slot = B.add(Operand::reg(Tid), Operand::imm(ResultBase));
  B.store(Operand::reg(Slot), Operand::reg(Acc));
  B.ret();

  F->recomputePreds();
  return W;
}
