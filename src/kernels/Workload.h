//===- Workload.h - Table 2 benchmark suite --------------------*- C++ -*-===//
///
/// \file
/// The paper's evaluation workloads (Table 2), rebuilt in simtsr IR with the
/// control-flow and divergence structure of the originals: trip-count
/// distributions, prolog/epilog weights, memory- vs compute-boundedness and
/// the user annotations (predict directives / reconverge_entry) the paper's
/// programmers inserted. Used by the benchmark harnesses, the examples and
/// the integration tests.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_KERNELS_WORKLOAD_H
#define SIMTSR_KERNELS_WORKLOAD_H

#include "ir/Module.h"
#include "sim/LatencyModel.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace simtsr {

class WarpSimulator;

/// Which Section 3 divergence pattern a workload exhibits.
enum class DivergencePattern {
  LoopMerge,      ///< Divergent-trip inner loop in an outer task loop.
  IterationDelay, ///< Divergent condition inside a loop.
  CommonCall,     ///< Common function call across divergent paths.
};

const char *getDivergencePatternName(DivergencePattern P);

struct Workload {
  std::string Name;        ///< Table 2 benchmark name (e.g. "rsbench").
  std::string Description; ///< One-line Table 2 description.
  DivergencePattern Pattern;
  std::unique_ptr<Module> M; ///< Annotated module (predict directives in).
  std::string KernelName;    ///< Function the simulator launches.
  LatencyModel Latency;      ///< Compute- or memory-bound cost model.
  std::vector<int64_t> Args; ///< Kernel arguments.
  /// Pre-launch memory initialization (lookup tables etc.); may be null.
  std::function<void(WarpSimulator &)> InitMemory;
  /// Scale factor in (0, 1] shrinking the workload for quick runs.
  double Scale = 1.0;
  /// Soft-barrier threshold the "programmer" tuned for this application
  /// (Section 5.3); negative means the classic full-warp barrier.
  /// XSBench's expensive refill makes a small threshold optimal.
  int RecommendedSoftThreshold = -1;
};

/// Factory signatures take a scale in (0, 1]; 1.0 is the default size used
/// by the paper-figure benchmarks.
Workload makeRSBench(double Scale = 1.0);
Workload makeXSBench(double Scale = 1.0);
Workload makeMCB(double Scale = 1.0);
Workload makePathTracer(double Scale = 1.0);
Workload makeMCGPU(double Scale = 1.0);
Workload makeMummer(double Scale = 1.0);
Workload makeMeiyaMD5(double Scale = 1.0);
Workload makeOptixTrace(double Scale = 1.0);
Workload makeGpuMCML(double Scale = 1.0);
/// Figure 2(c) validation microbenchmark (common function call).
Workload makeMicroCommonCall(double Scale = 1.0);

/// The full annotated suite in Table 2 order (plus the micro benchmark).
std::vector<Workload> makeAllWorkloads(double Scale = 1.0);

/// Workloads the paper reports in Figure 7/8 (programmer-annotated).
std::vector<Workload> makeAnnotatedWorkloads(double Scale = 1.0);

} // namespace simtsr

#endif // SIMTSR_KERNELS_WORKLOAD_H
