//===- KernelBuild.h - Shared kernel-construction helpers ------*- C++ -*-===//
///
/// \file
/// Small IR-emission helpers shared by the workload builders: ALU chains
/// standing in for physics/shading math, table lookups, and the common
/// memory-layout conventions (per-thread result slots at the bottom of
/// memory, lookup tables above them, one atomic counter word).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_KERNELS_KERNELBUILD_H
#define SIMTSR_KERNELS_KERNELBUILD_H

#include "ir/IRBuilder.h"

namespace simtsr {
namespace kernelbuild {

/// Memory layout shared by all workloads.
constexpr int64_t ResultBase = 0;    ///< mem[ResultBase + tid]: checksum.
constexpr int64_t CounterWord = 96;  ///< One atomic counter.
constexpr int64_t TableBase = 128;   ///< Lookup tables live here and up.

/// Emits \p Count dependent multiply-xor rounds over register \p Value;
/// \returns the final register. Stands in for the dense arithmetic of
/// cross-section / shading / hashing inner loops.
inline unsigned emitAluChain(IRBuilder &B, unsigned Value, int Count,
                             int64_t SeedConst) {
  unsigned X = Value;
  for (int K = 0; K < Count; ++K) {
    X = B.mul(Operand::reg(X), Operand::imm(SeedConst + 2 * K + 1));
    X = B.xorOp(Operand::reg(X), Operand::imm(0x9e3779b9 + K));
  }
  return X;
}

/// Emits a table load at TableBase + (\p Index masked into
/// [0, TableWords)); \p TableWords must be a power of two so the mask
/// stays non-negative even for wrapped-around indices. \returns the
/// loaded register.
inline unsigned emitTableLoad(IRBuilder &B, unsigned Index,
                              int64_t TableWords) {
  assert((TableWords & (TableWords - 1)) == 0 &&
         "table size must be a power of two");
  unsigned Slot = B.andOp(Operand::reg(Index), Operand::imm(TableWords - 1));
  unsigned Addr = B.add(Operand::reg(Slot), Operand::imm(TableBase));
  return B.load(Operand::reg(Addr));
}

/// Reassigns \p Dst := \p Src (non-SSA move into an existing register).
inline void emitMove(BasicBlock *BB, unsigned Dst, unsigned Src) {
  BB->append(Instruction(Opcode::Mov, Dst, {Operand::reg(Src)}));
}

/// Scales \p Value by \p Scale, never below \p Min.
inline int64_t scaled(int64_t Value, double Scale, int64_t Min = 1) {
  auto V = static_cast<int64_t>(static_cast<double>(Value) * Scale);
  return V < Min ? Min : V;
}

} // namespace kernelbuild
} // namespace simtsr

#endif // SIMTSR_KERNELS_KERNELBUILD_H
