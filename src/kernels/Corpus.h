//===- Corpus.h - Synthetic application corpus (Section 5.4) ----*- C++ -*-===//
///
/// \file
/// Section 5.4 scans a database of 520 CUDA applications: 75 had SIMT
/// efficiency below ~80%, automatic detection found non-trivial
/// opportunity in 16, and 5 improved significantly. We reproduce the
/// shape of that funnel with a seeded generator of structured random
/// kernels: most are uniform (divergence-free), a minority carry divergent
/// conditionals or divergent-trip inner loops of varying weight, and only
/// kernels whose common code dominates the refill path profit from
/// speculative reconvergence.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_KERNELS_CORPUS_H
#define SIMTSR_KERNELS_CORPUS_H

#include "ir/Module.h"

#include <memory>

namespace simtsr {

struct CorpusKernel {
  uint64_t Id = 0;
  std::unique_ptr<Module> M;
  std::string KernelName = "app";
  /// Generator ground truth, for sanity checks only — the study itself
  /// must rediscover divergence from measurements.
  bool HasDivergenceSources = false;
};

/// Deterministically generates application \p Id of the corpus.
CorpusKernel makeCorpusKernel(uint64_t Id);

/// The paper's corpus size.
constexpr unsigned CorpusSize = 520;

} // namespace simtsr

#endif // SIMTSR_KERNELS_CORPUS_H
