//===- Runner.h - Workload execution helper --------------------*- C++ -*-===//
///
/// \file
/// Glue between the workload suite, the pass pipeline and the simulator:
/// clones a workload (modules are mutated by the passes), runs the
/// configured pipeline, launches the warp and returns the metrics the
/// evaluation section reports. Used by benches, examples and the
/// integration tests.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_KERNELS_RUNNER_H
#define SIMTSR_KERNELS_RUNNER_H

#include "kernels/Workload.h"
#include "observe/Trace.h"
#include "sim/Grid.h"
#include "sim/Warp.h"
#include "transform/PassStage.h"
#include "transform/Pipeline.h"

namespace simtsr {

/// Deep-copies \p W via Module::clone() (the passes mutate modules in
/// place, so every run works on a fresh copy).
Workload cloneWorkload(const Workload &W);

struct WorkloadOutcome {
  RunResult::Status Status = RunResult::Status::Finished;
  std::string TrapMessage;
  double SimtEfficiency = 0.0;
  uint64_t Cycles = 0;
  uint64_t IssueSlots = 0;
  uint64_t Checksum = 0;
  PipelineReport Pipeline;

  bool ok() const { return Status == RunResult::Status::Finished; }
};

/// Runs \p W under \p Spec (a PipelineOptions argument converts
/// implicitly). \p W itself is left untouched.
WorkloadOutcome runWorkload(const Workload &W, const PipelineSpec &Spec,
                            uint64_t Seed = 1,
                            SchedulerPolicy Policy =
                                SchedulerPolicy::MaxConvergence);

/// Runs \p W as a multi-warp grid (fresh memory image per warp) under
/// \p Opts. \p W itself is left untouched.
GridResult runWorkloadGrid(const Workload &W, const PipelineSpec &Spec,
                           unsigned Warps, uint64_t Seed = 1);

/// \returns the launch trace digest of \p W under \p Opts — the same value
/// GridResult::TraceDigest reports, computed through the real grid path
/// (parallel when SIMTSR_THREADS allows). This is what the golden digest
/// tests check in.
uint64_t workloadTraceDigest(const Workload &W, const PipelineSpec &Spec,
                             SchedulerPolicy Policy, unsigned Warps,
                             uint64_t Seed);

/// One probe of \p W under a forward-progress model: the terminal status
/// plus the launch trace digest, computed through the same grid path as
/// workloadTraceDigest. Under a weak model the digest covers the warps
/// (and partial warp) executed up to the livelock — still deterministic,
/// so the progress golden tests pin it. Fair probes reproduce
/// workloadTraceDigest bit for bit.
struct ProgressProbe {
  RunResult::Status Status = RunResult::Status::Finished;
  uint64_t TraceDigest = 0;
};
ProgressProbe workloadProgressProbe(const Workload &W,
                                    const PipelineSpec &Spec,
                                    SchedulerPolicy Policy, unsigned Warps,
                                    uint64_t Seed,
                                    const ProgressSpec &Progress);

/// One warp's recorded schedule from a traced run.
struct WarpTrace {
  unsigned WarpIndex = 0;
  RunResult::Status Status = RunResult::Status::Finished;
  std::string TrapMessage;
  uint64_t Digest = 0;   ///< This warp's own trace digest.
  bool Truncated = false;
  std::vector<observe::TraceEvent> Events;
};

/// A full traced run: per-warp event streams plus the folded launch
/// digest. Events point into \p Compiled's module, which the result owns —
/// keep the result alive while consuming the events.
struct TracedWorkloadResult {
  bool Ok = true;
  uint64_t TraceDigest = 0; ///< Folded as GridResult::TraceDigest folds.
  uint64_t Cycles = 0;      ///< Summed over warps.
  uint64_t IssueSlots = 0;  ///< Summed over warps.
  PipelineReport Pipeline;
  std::vector<WarpTrace> Warps;
  Workload Compiled; ///< The post-pipeline workload the events reference.
};

/// Runs \p W warp by warp with an event recorder attached to each warp,
/// using the exact per-warp configs the grid uses (gridWarpConfig), so the
/// folded digest equals workloadTraceDigest() for the same parameters.
/// Remarks from the pass pipeline land in \p Remarks when non-null.
TracedWorkloadResult
runWorkloadTraced(const Workload &W, const PipelineSpec &Spec,
                  SchedulerPolicy Policy, unsigned Warps, uint64_t Seed,
                  observe::RemarkStream *Remarks = nullptr,
                  size_t MaxEventsPerWarp = 1u << 20,
                  ProgressSpec Progress = ProgressSpec{});

/// Offline soft-barrier threshold tuning — the paper leaves "automatically
/// discovering the ideal threshold parameter" to future work (Section
/// 5.3); this is the obvious realization: sweep thresholds on a pilot run
/// and return the fastest. \p Step controls sweep granularity.
int autotuneSoftThreshold(const Workload &Pilot, uint64_t Seed = 123,
                          int Step = 4);

/// The pipeline configuration the paper's programmer-annotated runs used
/// for \p W: speculative reconvergence with the workload's tuned soft
/// threshold (classic full barrier when none is recommended).
inline PipelineOptions annotatedOptionsFor(const Workload &W) {
  return W.RecommendedSoftThreshold >= 0
             ? PipelineOptions::softBarrier(W.RecommendedSoftThreshold)
             : PipelineOptions::speculative();
}

} // namespace simtsr

#endif // SIMTSR_KERNELS_RUNNER_H
