//===- MeiyaMD5.cpp - MD5 hash reversal ----------------------------------------===//
///
/// \file
/// MeiyaMD5 [Wu et al.]: GPU MD5 hash reversal. Each thread hashes a
/// stream of candidate passwords; the number of MD5 block rounds depends
/// on the candidate length, so the compute-heavy inner loop is load
/// imbalanced — the paper calls it the ideal Loop Merge candidate
/// (Section 5.4, found by automatic detection).
///
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuild.h"
#include "kernels/Workload.h"
#include "sim/Warp.h"

using namespace simtsr;
using namespace simtsr::kernelbuild;

Workload simtsr::makeMeiyaMD5(double Scale) {
  Workload W;
  W.Name = "meiyamd5";
  W.Description = "MD5 hash reversal with length-dependent round counts "
                  "(load-imbalanced compute)";
  W.Pattern = DivergencePattern::LoopMerge;
  W.KernelName = "meiyamd5";
  W.Latency = LatencyModel::computeBound();
  W.Scale = Scale;

  const int64_t Candidates = scaled(8, Scale);
  const int64_t MinLen = 2, MaxLen = 17; // Candidate password lengths.
  const int64_t RoundsPerChar = 4;       // MD5 rounds scale with length.
  const int64_t RoundOps = 16;           // F/G/H/I mixing weight per round.

  W.M = std::make_unique<Module>();
  W.M->setGlobalMemoryWords(1 << 12);
  Function *F = W.M->createFunction("meiyamd5", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *NextCandidate = F->createBlock("next_candidate");
  BasicBlock *RoundHeader = F->createBlock("round_header");
  BasicBlock *Round = F->createBlock("round");
  BasicBlock *Compare = F->createBlock("compare");
  BasicBlock *Found = F->createBlock("found");
  BasicBlock *Advance = F->createBlock("advance");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned Cand = B.mov(Operand::imm(0));
  unsigned Digest = B.mov(Operand::imm(0x67452301));
  B.predict(Round);
  B.jmp(NextCandidate);

  B.setInsertBlock(NextCandidate);
  unsigned Len = B.randRange(Operand::imm(MinLen), Operand::imm(MaxLen));
  unsigned Rounds = B.mul(Operand::reg(Len), Operand::imm(RoundsPerChar));
  unsigned Word = B.rand();
  unsigned R = B.mov(Operand::imm(0));
  B.jmp(RoundHeader);

  B.setInsertBlock(RoundHeader);
  unsigned More = B.cmpLT(Operand::reg(R), Operand::reg(Rounds));
  B.br(Operand::reg(More), Round, Compare);

  // One MD5-style mixing round.
  B.setInsertBlock(Round);
  unsigned X = B.add(Operand::reg(Digest), Operand::reg(Word));
  X = emitAluChain(B, X, static_cast<int>(RoundOps), 0xd76aa478);
  emitMove(Round, Digest, X);
  unsigned RNext = B.add(Operand::reg(R), Operand::imm(1));
  emitMove(Round, R, RNext);
  B.jmp(RoundHeader);

  // Compare against the target digest (a match is astronomically rare).
  B.setInsertBlock(Compare);
  unsigned Low = B.andOp(Operand::reg(Digest), Operand::imm(0xffffff));
  unsigned Match = B.cmpEQ(Operand::reg(Low), Operand::imm(0x123456));
  B.br(Operand::reg(Match), Found, Advance);

  B.setInsertBlock(Found);
  B.atomicAdd(Operand::imm(CounterWord), Operand::imm(1));
  B.jmp(Advance);

  B.setInsertBlock(Advance);
  unsigned CNext = B.add(Operand::reg(Cand), Operand::imm(1));
  emitMove(Advance, Cand, CNext);
  unsigned Done = B.cmpGE(Operand::reg(Cand), Operand::imm(Candidates));
  B.br(Operand::reg(Done), Exit, NextCandidate);

  B.setInsertBlock(Exit);
  unsigned Slot = B.add(Operand::reg(Tid), Operand::imm(ResultBase));
  B.store(Operand::reg(Slot), Operand::reg(Digest));
  B.ret();

  F->recomputePreds();
  return W;
}
