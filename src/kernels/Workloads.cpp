//===- Workloads.cpp - Table 2 suite assembly -----------------------------------===//

#include "kernels/Workload.h"

using namespace simtsr;

const char *simtsr::getDivergencePatternName(DivergencePattern P) {
  switch (P) {
  case DivergencePattern::LoopMerge:
    return "loop-merge";
  case DivergencePattern::IterationDelay:
    return "iteration-delay";
  case DivergencePattern::CommonCall:
    return "common-call";
  }
  return "unknown";
}

std::vector<Workload> simtsr::makeAllWorkloads(double Scale) {
  std::vector<Workload> All;
  All.push_back(makeRSBench(Scale));
  All.push_back(makeXSBench(Scale));
  All.push_back(makeMCB(Scale));
  All.push_back(makePathTracer(Scale));
  All.push_back(makeMCGPU(Scale));
  All.push_back(makeMummer(Scale));
  All.push_back(makeMeiyaMD5(Scale));
  All.push_back(makeOptixTrace(Scale));
  All.push_back(makeGpuMCML(Scale));
  All.push_back(makeMicroCommonCall(Scale));
  return All;
}

std::vector<Workload> simtsr::makeAnnotatedWorkloads(double Scale) {
  // Figure 7/8 report the programmer-annotated set; MeiyaMD5 and OptiX
  // are the automatic-detection showcases (Figure 10), and the micro
  // benchmark validates Figure 2(c) separately.
  std::vector<Workload> Set;
  Set.push_back(makeRSBench(Scale));
  Set.push_back(makeXSBench(Scale));
  Set.push_back(makeMCB(Scale));
  Set.push_back(makePathTracer(Scale));
  Set.push_back(makeMCGPU(Scale));
  Set.push_back(makeMummer(Scale));
  Set.push_back(makeGpuMCML(Scale));
  return Set;
}
