//===- PathTracer.cpp - Cornell-box path tracing microbenchmark ---------------===//
///
/// \file
/// PathTracer: CUDA microbenchmark rendering spheres in a Cornell box.
/// Each sample bounces until Russian roulette terminates the path (or a
/// bounce cap is hit), so the bounce loop has a divergent, geometrically
/// distributed trip count. Regenerating a ray is cheap relative to
/// shading, which is why Figure 9 shows PathTracer executing fastest at
/// full reconvergence (threshold 32).
///
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuild.h"
#include "kernels/Workload.h"
#include "sim/Warp.h"

using namespace simtsr;
using namespace simtsr::kernelbuild;

Workload simtsr::makePathTracer(double Scale) {
  Workload W;
  W.Name = "pathtracer";
  W.Description = "Cornell-box path tracer with Russian roulette "
                  "termination (loop trip divergence)";
  W.Pattern = DivergencePattern::LoopMerge;
  W.KernelName = "pathtracer";
  W.Latency = LatencyModel::computeBound();
  W.Scale = Scale;

  const int64_t Samples = scaled(10, Scale);
  const int64_t SurvivePct = 72; // Per-bounce survival probability.
  const int64_t MaxBounces = 24;
  const int64_t ShadeOps = 22;   // Per-bounce shading weight.
  const int64_t CameraOps = 3;   // Ray regeneration weight (cheap).

  W.M = std::make_unique<Module>();
  W.M->setGlobalMemoryWords(1 << 12);
  Function *F = W.M->createFunction("pathtracer", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Camera = F->createBlock("camera");
  BasicBlock *Bounce = F->createBlock("bounce");
  BasicBlock *Accumulate = F->createBlock("accumulate");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned Sample = B.mov(Operand::imm(0));
  unsigned Color = B.mov(Operand::imm(1));
  B.predict(Bounce);
  B.jmp(Camera);

  // Camera: regenerate a primary ray (cheap prolog).
  B.setInsertBlock(Camera);
  unsigned Ray = B.randRange(Operand::imm(0), Operand::imm(1 << 20));
  Ray = emitAluChain(B, Ray, static_cast<int>(CameraOps), 69069);
  unsigned Depth = B.mov(Operand::imm(0));
  B.jmp(Bounce);

  // Bounce: shade the hit, then Russian roulette.
  B.setInsertBlock(Bounce);
  unsigned X = B.add(Operand::reg(Color), Operand::reg(Ray));
  X = emitAluChain(B, X, static_cast<int>(ShadeOps), 1103515245);
  emitMove(Bounce, Color, X);
  unsigned DNext = B.add(Operand::reg(Depth), Operand::imm(1));
  emitMove(Bounce, Depth, DNext);
  unsigned Roll = B.randRange(Operand::imm(0), Operand::imm(100));
  unsigned Survive = B.cmpLT(Operand::reg(Roll), Operand::imm(SurvivePct));
  unsigned Below = B.cmpLT(Operand::reg(Depth), Operand::imm(MaxBounces));
  unsigned Alive = B.andOp(Operand::reg(Survive), Operand::reg(Below));
  B.br(Operand::reg(Alive), Bounce, Accumulate);

  // Accumulate the sample and move on.
  B.setInsertBlock(Accumulate);
  unsigned Y = B.xorOp(Operand::reg(Color), Operand::reg(Depth));
  emitMove(Accumulate, Color, Y);
  unsigned SNext = B.add(Operand::reg(Sample), Operand::imm(1));
  emitMove(Accumulate, Sample, SNext);
  unsigned Done = B.cmpGE(Operand::reg(Sample), Operand::imm(Samples));
  B.br(Operand::reg(Done), Exit, Camera);

  B.setInsertBlock(Exit);
  unsigned Slot = B.add(Operand::reg(Tid), Operand::imm(ResultBase));
  B.store(Operand::reg(Slot), Operand::reg(Color));
  B.ret();

  F->recomputePreds();
  return W;
}
