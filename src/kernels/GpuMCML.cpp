//===- GpuMCML.cpp - Photon transport in turbid media ---------------------------===//
///
/// \file
/// GPU-MCML [Alerstam et al.]: photon transport through layered turbid
/// media. A photon random-walks, losing weight each scattering step until
/// the weight drops below a threshold; a roulette then kills or boosts
/// it. Step counts are geometrically distributed per photon, giving the
/// divergent inner loop the paper exploits.
///
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuild.h"
#include "kernels/Workload.h"
#include "sim/Warp.h"

using namespace simtsr;
using namespace simtsr::kernelbuild;

Workload simtsr::makeGpuMCML(double Scale) {
  Workload W;
  W.Name = "gpu-mcml";
  W.Description = "Photon transport in turbid media with weight roulette "
                  "(geometric step counts)";
  W.Pattern = DivergencePattern::LoopMerge;
  W.KernelName = "gpumcml";
  W.Latency = LatencyModel::computeBound();
  W.Scale = Scale;

  const int64_t Photons = scaled(8, Scale);
  const int64_t InitialWeight = 1 << 20;
  const int64_t WeightFloor = 1 << 12;
  const int64_t StepOps = 26;   // Scatter direction sampling weight.
  const int64_t SurviveOdds = 6; // Roulette: 1-in-6 survival boost.

  W.M = std::make_unique<Module>();
  W.M->setGlobalMemoryWords(1 << 12);
  Function *F = W.M->createFunction("gpumcml", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *LaunchPhoton = F->createBlock("launch_photon");
  BasicBlock *StepHeader = F->createBlock("step_header");
  BasicBlock *Step = F->createBlock("step");
  BasicBlock *Roulette = F->createBlock("roulette");
  BasicBlock *Boost = F->createBlock("boost");
  BasicBlock *Record = F->createBlock("record");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned Photon = B.mov(Operand::imm(0));
  unsigned Fluence = B.mov(Operand::imm(1));
  B.predict(Step);
  B.jmp(LaunchPhoton);

  B.setInsertBlock(LaunchPhoton);
  unsigned WInit = B.mov(Operand::imm(InitialWeight));
  unsigned Weight = B.mov(Operand::reg(WInit));
  B.jmp(StepHeader);

  B.setInsertBlock(StepHeader);
  unsigned Alive = B.cmpGT(Operand::reg(Weight), Operand::imm(WeightFloor));
  B.br(Operand::reg(Alive), Step, Roulette);

  // One scattering step: sample a direction, deposit, decay the weight.
  B.setInsertBlock(Step);
  unsigned X = B.add(Operand::reg(Fluence), Operand::reg(Weight));
  X = emitAluChain(B, X, static_cast<int>(StepOps), 1229782938);
  emitMove(Step, Fluence, X);
  unsigned DecayPct = B.randRange(Operand::imm(55), Operand::imm(95));
  unsigned Scaled = B.mul(Operand::reg(Weight), Operand::reg(DecayPct));
  unsigned WNext = B.div(Operand::reg(Scaled), Operand::imm(100));
  emitMove(Step, Weight, WNext);
  B.jmp(StepHeader);

  // Roulette: occasionally boost the photon back to life.
  B.setInsertBlock(Roulette);
  unsigned Roll = B.randRange(Operand::imm(0), Operand::imm(SurviveOdds));
  unsigned Survives = B.cmpEQ(Operand::reg(Roll), Operand::imm(0));
  B.br(Operand::reg(Survives), Boost, Record);

  B.setInsertBlock(Boost);
  unsigned Boosted = B.mul(Operand::reg(Weight), Operand::imm(SurviveOdds));
  emitMove(Boost, Weight, Boosted);
  B.jmp(StepHeader);

  B.setInsertBlock(Record);
  unsigned Y = B.xorOp(Operand::reg(Fluence), Operand::reg(Weight));
  emitMove(Record, Fluence, Y);
  unsigned PNext = B.add(Operand::reg(Photon), Operand::imm(1));
  emitMove(Record, Photon, PNext);
  unsigned Done = B.cmpGE(Operand::reg(Photon), Operand::imm(Photons));
  B.br(Operand::reg(Done), Exit, LaunchPhoton);

  B.setInsertBlock(Exit);
  unsigned Slot = B.add(Operand::reg(Tid), Operand::imm(ResultBase));
  B.store(Operand::reg(Slot), Operand::reg(Fluence));
  B.ret();

  F->recomputePreds();
  return W;
}
