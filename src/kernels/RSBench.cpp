//===- RSBench.cpp - Monte Carlo neutron transport (multipole) -----------------===//
///
/// \file
/// RSBench [Tramm et al.]: the packed-data multipole macroscopic
/// cross-section lookup kernel of Monte Carlo neutron transport. After the
/// paper's thread coarsening, each thread walks many materials (outer task
/// loop); for each material it accumulates cross sections over the
/// material's nuclides (inner loop). Nuclide counts per material range
/// from 4 to 321, so the inner trip count is heavily divergent — the
/// paper's flagship Loop Merge candidate (Figure 3). Compute bound.
///
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuild.h"
#include "kernels/Workload.h"
#include "sim/Warp.h"

using namespace simtsr;
using namespace simtsr::kernelbuild;

Workload simtsr::makeRSBench(double Scale) {
  Workload W;
  W.Name = "rsbench";
  W.Description = "Monte Carlo neutron transport, multipole cross-section "
                  "lookup (compute bound)";
  W.Pattern = DivergencePattern::LoopMerge;
  W.KernelName = "rsbench";
  W.Latency = LatencyModel::computeBound();
  W.Scale = Scale;

  // The RSBench material table: number of nuclides per material, 4..321
  // (the values RSBench's default H-M Large problem uses).
  static const int64_t NuclidesPerMaterial[12] = {321, 5, 4,  4, 27, 21,
                                                  21,  9, 12, 9, 10, 16};
  const int64_t NumMaterials = 12;
  const int64_t Tasks = scaled(8, Scale);     // materials per thread
  const int64_t BodyOps = scaled(14, Scale);  // multipole evaluation weight

  W.M = std::make_unique<Module>();
  W.M->setGlobalMemoryWords(1 << 14);
  Function *F = W.M->createFunction("rsbench", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Prolog = F->createBlock("prolog");
  BasicBlock *InnerHeader = F->createBlock("inner_header");
  BasicBlock *InnerBody = F->createBlock("inner_body");
  BasicBlock *Epilog = F->createBlock("epilog");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned Task = B.mov(Operand::imm(0));
  unsigned Acc = B.mov(Operand::imm(1));
  // The user's reconvergence hint: gather at the nuclide loop body.
  B.predict(InnerBody);
  B.jmp(Prolog);

  // Prolog: pick a random material, read its nuclide count.
  B.setInsertBlock(Prolog);
  unsigned Mat = B.randRange(Operand::imm(0), Operand::imm(NumMaterials));
  unsigned NAddr = B.add(Operand::reg(Mat), Operand::imm(TableBase));
  unsigned Nuclides = B.load(Operand::reg(NAddr));
  unsigned J = B.mov(Operand::imm(0));
  B.jmp(InnerHeader);

  B.setInsertBlock(InnerHeader);
  unsigned More = B.cmpLT(Operand::reg(J), Operand::reg(Nuclides));
  B.br(Operand::reg(More), InnerBody, Epilog);

  // Inner body: accumulate this nuclide's cross-section contribution.
  B.setInsertBlock(InnerBody);
  unsigned X = B.add(Operand::reg(Acc), Operand::reg(J));
  X = emitAluChain(B, X, static_cast<int>(BodyOps), 1103515245);
  emitMove(InnerBody, Acc, X);
  unsigned JNext = B.add(Operand::reg(J), Operand::imm(1));
  emitMove(InnerBody, J, JNext);
  B.jmp(InnerHeader);

  // Epilog: post-processing of the macroscopic cross section.
  B.setInsertBlock(Epilog);
  unsigned Y = B.xorOp(Operand::reg(Acc), Operand::reg(Nuclides));
  Y = B.add(Operand::reg(Y), Operand::reg(Mat));
  emitMove(Epilog, Acc, Y);
  unsigned TNext = B.add(Operand::reg(Task), Operand::imm(1));
  emitMove(Epilog, Task, TNext);
  unsigned Done = B.cmpGE(Operand::reg(Task), Operand::imm(Tasks));
  B.br(Operand::reg(Done), Exit, Prolog);

  B.setInsertBlock(Exit);
  unsigned Slot = B.add(Operand::reg(Tid), Operand::imm(ResultBase));
  B.store(Operand::reg(Slot), Operand::reg(Acc));
  B.atomicAdd(Operand::imm(CounterWord), Operand::imm(1));
  B.ret();

  F->recomputePreds();

  W.InitMemory = [NumMaterials, Scale](WarpSimulator &Sim) {
    for (int64_t I = 0; I < NumMaterials; ++I) {
      int64_t N = scaled(NuclidesPerMaterial[I], Scale);
      Sim.setMemory(static_cast<uint64_t>(TableBase + I), N);
    }
  };
  return W;
}
