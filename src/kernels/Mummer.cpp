//===- Mummer.cpp - Suffix-tree sequence alignment ------------------------------===//
///
/// \file
/// MUMmerGPU [Schatz et al.]: each thread aligns query reads against a
/// reference suffix tree. The match-extension loop walks the tree for a
/// query-dependent number of steps (read lengths and match depths vary),
/// with a table load per step — a memory-leaning Loop Merge pattern.
///
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuild.h"
#include "kernels/Workload.h"
#include "sim/Warp.h"

using namespace simtsr;
using namespace simtsr::kernelbuild;

Workload simtsr::makeMummer(double Scale) {
  Workload W;
  W.Name = "mummer";
  W.Description = "Parallel sequence alignment for genome sequencing "
                  "(divergent match lengths)";
  W.Pattern = DivergencePattern::LoopMerge;
  W.KernelName = "mummer";
  W.Latency = LatencyModel::memoryBound();
  W.Scale = Scale;

  const int64_t Queries = scaled(8, Scale);
  const int64_t MaxMatchLen = 48;
  const int64_t TableWords = 2048;
  const int64_t StepOps = 4;

  W.M = std::make_unique<Module>();
  W.M->setGlobalMemoryWords(1 << 13);
  Function *F = W.M->createFunction("mummer", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *NextQuery = F->createBlock("next_query");
  BasicBlock *MatchHeader = F->createBlock("match_header");
  BasicBlock *MatchStep = F->createBlock("match_step");
  BasicBlock *Report = F->createBlock("report");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned Query = B.mov(Operand::imm(0));
  unsigned Score = B.mov(Operand::imm(1));
  B.predict(MatchStep);
  B.jmp(NextQuery);

  // Fetch the next read; its match length diverges per thread.
  B.setInsertBlock(NextQuery);
  unsigned Len = B.randRange(Operand::imm(1), Operand::imm(MaxMatchLen));
  unsigned Node = B.randRange(Operand::imm(0), Operand::imm(TableWords));
  unsigned Step = B.mov(Operand::imm(0));
  B.jmp(MatchHeader);

  B.setInsertBlock(MatchHeader);
  unsigned More = B.cmpLT(Operand::reg(Step), Operand::reg(Len));
  B.br(Operand::reg(More), MatchStep, Report);

  // One suffix-tree edge traversal: a child-pointer load plus scoring.
  B.setInsertBlock(MatchStep);
  unsigned Child = emitTableLoad(B, Node, TableWords);
  unsigned NNext = B.add(Operand::reg(Node), Operand::reg(Child));
  emitMove(MatchStep, Node, NNext);
  unsigned X = B.add(Operand::reg(Score), Operand::reg(Child));
  X = emitAluChain(B, X, static_cast<int>(StepOps), 48271);
  emitMove(MatchStep, Score, X);
  unsigned SNext = B.add(Operand::reg(Step), Operand::imm(1));
  emitMove(MatchStep, Step, SNext);
  B.jmp(MatchHeader);

  // Report the maximal match and advance to the next query.
  B.setInsertBlock(Report);
  unsigned Y = B.xorOp(Operand::reg(Score), Operand::reg(Len));
  emitMove(Report, Score, Y);
  unsigned QNext = B.add(Operand::reg(Query), Operand::imm(1));
  emitMove(Report, Query, QNext);
  unsigned Done = B.cmpGE(Operand::reg(Query), Operand::imm(Queries));
  B.br(Operand::reg(Done), Exit, NextQuery);

  B.setInsertBlock(Exit);
  unsigned Slot = B.add(Operand::reg(Tid), Operand::imm(ResultBase));
  B.store(Operand::reg(Slot), Operand::reg(Score));
  B.ret();

  F->recomputePreds();

  W.InitMemory = [TableWords](WarpSimulator &Sim) {
    uint64_t Seed = 0x2545f4914f6cdd1dull;
    for (int64_t I = 0; I < TableWords; ++I)
      Sim.setMemory(static_cast<uint64_t>(TableBase + I),
                    static_cast<int64_t>(splitMix64(Seed) % 97));
  };
  return W;
}
