//===- Corpus.cpp - Synthetic application corpus (Section 5.4) ------------------===//

#include "kernels/Corpus.h"

#include "kernels/KernelBuild.h"
#include "support/Rng.h"

using namespace simtsr;
using namespace simtsr::kernelbuild;

namespace {

/// Kernel archetypes, drawn with the skew the paper observed: divergent
/// workloads are a small fraction of GPU applications.
enum class Archetype {
  StraightLine,      // Dense ALU, no control flow.
  UniformLoop,       // Loop with a warp-uniform trip count.
  UniformBranchLoop, // Loop + data-uniform conditional.
  DivergentIf,       // Loop + divergent conditional (light arm).
  DivergentIfHeavy,  // Loop + divergent conditional (heavy arm).
  DivergentNest,     // Outer loop + divergent-trip inner loop.
};

Archetype pickArchetype(Rng &R) {
  // ~84% uniform kernels, ~16% divergent of varying profitability — the
  // paper's corpus skew (75 of 520 below ~80% efficiency).
  uint64_t Roll = R.nextBelow(100);
  if (Roll < 42)
    return Archetype::StraightLine;
  if (Roll < 66)
    return Archetype::UniformLoop;
  if (Roll < 84)
    return Archetype::UniformBranchLoop;
  if (Roll < 93)
    return Archetype::DivergentIf;
  if (Roll < 96)
    return Archetype::DivergentIfHeavy;
  return Archetype::DivergentNest;
}

} // namespace

CorpusKernel simtsr::makeCorpusKernel(uint64_t Id) {
  CorpusKernel K;
  K.Id = Id;
  Rng R(0xC0FFEE ^ (Id * 0x9e3779b97f4a7c15ull));
  Archetype Kind = pickArchetype(R);

  K.M = std::make_unique<Module>();
  K.M->setGlobalMemoryWords(1 << 12);
  Function *F = K.M->createFunction(K.KernelName, 0);
  IRBuilder B(F);

  const int64_t Trips = R.nextInRange(6, 24);
  const int BodyOps = static_cast<int>(R.nextInRange(4, 24));

  switch (Kind) {
  case Archetype::StraightLine: {
    BasicBlock *Entry = B.startBlock("entry");
    (void)Entry;
    unsigned Tid = B.tid();
    unsigned X = B.add(Operand::reg(Tid), Operand::imm(3));
    X = emitAluChain(B, X, BodyOps * 4, 1234567 + static_cast<int64_t>(Id));
    B.store(Operand::reg(Tid), Operand::reg(X));
    B.ret();
    break;
  }
  case Archetype::UniformLoop:
  case Archetype::UniformBranchLoop: {
    BasicBlock *Entry = B.startBlock("entry");
    BasicBlock *Header = F->createBlock("header");
    BasicBlock *Arm = F->createBlock("arm");
    BasicBlock *Latch = F->createBlock("latch");
    BasicBlock *Exit = F->createBlock("exit");
    B.setInsertBlock(Entry);
    unsigned Tid = B.tid();
    unsigned I = B.mov(Operand::imm(0));
    unsigned Acc = B.mov(Operand::imm(1));
    B.jmp(Header);
    B.setInsertBlock(Header);
    if (Kind == Archetype::UniformBranchLoop) {
      // Condition depends only on the uniform induction variable.
      unsigned Bit = B.andOp(Operand::reg(I), Operand::imm(1));
      B.br(Operand::reg(Bit), Arm, Latch);
    } else {
      B.jmp(Arm);
    }
    B.setInsertBlock(Arm);
    unsigned X = B.add(Operand::reg(Acc), Operand::reg(I));
    X = emitAluChain(B, X, BodyOps, 2246822519);
    emitMove(Arm, Acc, X);
    B.jmp(Latch);
    B.setInsertBlock(Latch);
    unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
    emitMove(Latch, I, INext);
    unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(Trips));
    B.br(Operand::reg(Done), Exit, Header);
    B.setInsertBlock(Exit);
    B.store(Operand::reg(Tid), Operand::reg(Acc));
    B.ret();
    break;
  }
  case Archetype::DivergentIf:
  case Archetype::DivergentIfHeavy: {
    BasicBlock *Entry = B.startBlock("entry");
    BasicBlock *Header = F->createBlock("header");
    BasicBlock *Hot = F->createBlock("hot");
    BasicBlock *Latch = F->createBlock("latch");
    BasicBlock *Exit = F->createBlock("exit");
    const int64_t HotPct = R.nextInRange(10, 50);
    const int HotOps = Kind == Archetype::DivergentIfHeavy
                           ? static_cast<int>(R.nextInRange(16, 96))
                           : static_cast<int>(R.nextInRange(2, 12));
    B.setInsertBlock(Entry);
    unsigned Tid = B.tid();
    unsigned I = B.mov(Operand::imm(0));
    unsigned Acc = B.mov(Operand::imm(1));
    B.jmp(Header);
    B.setInsertBlock(Header);
    unsigned Roll = B.randRange(Operand::imm(0), Operand::imm(100));
    unsigned Hit = B.cmpLT(Operand::reg(Roll), Operand::imm(HotPct));
    B.br(Operand::reg(Hit), Hot, Latch);
    B.setInsertBlock(Hot);
    unsigned X = B.add(Operand::reg(Acc), Operand::reg(Roll));
    X = emitAluChain(B, X, HotOps, 2654435761);
    emitMove(Hot, Acc, X);
    B.jmp(Latch);
    B.setInsertBlock(Latch);
    unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
    emitMove(Latch, I, INext);
    unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(Trips));
    B.br(Operand::reg(Done), Exit, Header);
    B.setInsertBlock(Exit);
    B.store(Operand::reg(Tid), Operand::reg(Acc));
    B.ret();
    K.HasDivergenceSources = true;
    break;
  }
  case Archetype::DivergentNest: {
    BasicBlock *Entry = B.startBlock("entry");
    BasicBlock *Outer = F->createBlock("outer");
    BasicBlock *InnerHeader = F->createBlock("inner_header");
    BasicBlock *InnerBody = F->createBlock("inner_body");
    BasicBlock *Epilog = F->createBlock("epilog");
    BasicBlock *Exit = F->createBlock("exit");
    const int64_t MaxInner = R.nextInRange(2, 48);
    const int InnerOps = static_cast<int>(R.nextInRange(4, 48));
    B.setInsertBlock(Entry);
    unsigned Tid = B.tid();
    unsigned I = B.mov(Operand::imm(0));
    unsigned Acc = B.mov(Operand::imm(1));
    B.jmp(Outer);
    B.setInsertBlock(Outer);
    unsigned N = B.randRange(Operand::imm(0), Operand::imm(MaxInner));
    unsigned J = B.mov(Operand::imm(0));
    B.jmp(InnerHeader);
    B.setInsertBlock(InnerHeader);
    unsigned More = B.cmpLT(Operand::reg(J), Operand::reg(N));
    B.br(Operand::reg(More), InnerBody, Epilog);
    B.setInsertBlock(InnerBody);
    unsigned X = B.add(Operand::reg(Acc), Operand::reg(J));
    X = emitAluChain(B, X, InnerOps, 40503);
    emitMove(InnerBody, Acc, X);
    unsigned JNext = B.add(Operand::reg(J), Operand::imm(1));
    emitMove(InnerBody, J, JNext);
    B.jmp(InnerHeader);
    B.setInsertBlock(Epilog);
    unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
    emitMove(Epilog, I, INext);
    unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(Trips));
    B.br(Operand::reg(Done), Exit, Outer);
    B.setInsertBlock(Exit);
    B.store(Operand::reg(Tid), Operand::reg(Acc));
    B.ret();
    K.HasDivergenceSources = true;
    break;
  }
  }

  F->recomputePreds();
  return K;
}
