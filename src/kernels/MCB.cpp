//===- MCB.cpp - LLNL Monte Carlo Benchmark ------------------------------------===//
///
/// \file
/// MCB [LLNL codesign]: simplified heuristic transport equation. Particles
/// stream cheaply most steps; occasionally a collision triggers expensive
/// physics (scatter sampling). The collision branch fires in a different
/// iteration for each thread — the canonical Iteration Delay pattern
/// (Figure 2(a)).
///
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuild.h"
#include "kernels/Workload.h"
#include "sim/Warp.h"

using namespace simtsr;
using namespace simtsr::kernelbuild;

Workload simtsr::makeMCB(double Scale) {
  Workload W;
  W.Name = "mcb";
  W.Description = "LLNL Monte Carlo transport benchmark (iteration delay)";
  W.Pattern = DivergencePattern::IterationDelay;
  W.KernelName = "mcb";
  W.Latency = LatencyModel::computeBound();
  W.Scale = Scale;

  const int64_t Steps = scaled(48, Scale);
  const int64_t CollisionPct = 12;      // Rare, expensive event.
  const int64_t CollisionOps = 45;      // Scatter physics weight.
  const int64_t StreamOps = 3;          // Cheap streaming step.

  W.M = std::make_unique<Module>();
  W.M->setGlobalMemoryWords(1 << 12);
  Function *F = W.M->createFunction("mcb", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Header = F->createBlock("step");
  BasicBlock *Collision = F->createBlock("collision");
  BasicBlock *Epilog = F->createBlock("epilog");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned I = B.mov(Operand::imm(0));
  unsigned Pos = B.mov(Operand::imm(7));
  B.predict(Collision);
  B.jmp(Header);

  // Streaming step: cheap position update, then the divergent test.
  B.setInsertBlock(Header);
  unsigned Delta = B.randRange(Operand::imm(1), Operand::imm(64));
  unsigned P1 = B.add(Operand::reg(Pos), Operand::reg(Delta));
  P1 = emitAluChain(B, P1, static_cast<int>(StreamOps), 1664525);
  emitMove(Header, Pos, P1);
  unsigned Roll = B.randRange(Operand::imm(0), Operand::imm(100));
  unsigned Hit = B.cmpLT(Operand::reg(Roll), Operand::imm(CollisionPct));
  B.br(Operand::reg(Hit), Collision, Epilog);

  // Collision: expensive scatter physics.
  B.setInsertBlock(Collision);
  unsigned Angle = B.randRange(Operand::imm(0), Operand::imm(360));
  unsigned X = B.add(Operand::reg(Pos), Operand::reg(Angle));
  X = emitAluChain(B, X, static_cast<int>(CollisionOps), 22695477);
  emitMove(Collision, Pos, X);
  B.atomicAdd(Operand::imm(CounterWord), Operand::imm(1));
  B.jmp(Epilog);

  B.setInsertBlock(Epilog);
  unsigned INext = B.add(Operand::reg(I), Operand::imm(1));
  emitMove(Epilog, I, INext);
  unsigned Done = B.cmpGE(Operand::reg(I), Operand::imm(Steps));
  B.br(Operand::reg(Done), Exit, Header);

  B.setInsertBlock(Exit);
  unsigned Slot = B.add(Operand::reg(Tid), Operand::imm(ResultBase));
  B.store(Operand::reg(Slot), Operand::reg(Pos));
  B.ret();

  F->recomputePreds();
  return W;
}
