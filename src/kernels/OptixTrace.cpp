//===- OptixTrace.cpp - Ray-tracing engine trace --------------------------------===//
///
/// \file
/// OptiX-style ray tracing [Parker et al.]: BVH traversal with a ray-
/// dependent depth followed by a shade call that both the reflection and
/// the miss paths invoke. Combines loop-trip divergence (the traversal
/// loop) with the common-function-call pattern of Figure 2(c): the shade
/// helper is marked reconverge_entry so the interprocedural pass gathers
/// all threads at its body.
///
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuild.h"
#include "kernels/Workload.h"
#include "sim/Warp.h"

using namespace simtsr;
using namespace simtsr::kernelbuild;

Workload simtsr::makeOptixTrace(double Scale) {
  Workload W;
  W.Name = "optix";
  W.Description = "Ray-tracing engine trace: divergent BVH traversal plus "
                  "a common shade call";
  W.Pattern = DivergencePattern::CommonCall;
  W.KernelName = "optixtrace";
  W.Latency = LatencyModel::computeBound();
  W.Scale = Scale;

  const int64_t Rays = scaled(8, Scale);
  const int64_t MaxDepth = 28;  // BVH depth varies per ray.
  const int64_t NodeOps = 6;    // Per-node intersection weight.
  const int64_t ShadeOps = 36;  // Shading weight (the common code).
  const int64_t TableWords = 1024;

  W.M = std::make_unique<Module>();
  W.M->setGlobalMemoryWords(1 << 12);

  // The common shade helper: every ray shades, from whichever path.
  Function *Shade = W.M->createFunction("shade", 1);
  Shade->setReconvergeAtEntry(true);
  {
    IRBuilder B(Shade);
    B.startBlock("entry");
    unsigned X = B.add(Operand::reg(0), Operand::imm(0x101));
    X = emitAluChain(B, X, static_cast<int>(ShadeOps), 16807);
    B.ret(Operand::reg(X));
  }

  Function *F = W.M->createFunction("optixtrace", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Generate = F->createBlock("generate");
  BasicBlock *TraverseHeader = F->createBlock("traverse_header");
  BasicBlock *TraverseNode = F->createBlock("traverse_node");
  BasicBlock *Classify = F->createBlock("classify");
  BasicBlock *HitPath = F->createBlock("hit");
  BasicBlock *MissPath = F->createBlock("miss");
  BasicBlock *WriteBack = F->createBlock("writeback");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned Ray = B.mov(Operand::imm(0));
  unsigned Image = B.mov(Operand::imm(1));
  // Note: no predict on the traversal loop — its body is too cheap
  // relative to ray regeneration, and gathering there regresses (we keep
  // the rejected placement as an ablation in bench_ablation_deconflict).
  // The profitable annotation is the reconverge_entry on @shade.
  B.jmp(Generate);

  B.setInsertBlock(Generate);
  unsigned Depth = B.randRange(Operand::imm(1), Operand::imm(MaxDepth));
  unsigned Node = B.randRange(Operand::imm(0), Operand::imm(TableWords));
  unsigned Level = B.mov(Operand::imm(0));
  B.jmp(TraverseHeader);

  B.setInsertBlock(TraverseHeader);
  unsigned More = B.cmpLT(Operand::reg(Level), Operand::reg(Depth));
  B.br(Operand::reg(More), TraverseNode, Classify);

  // One BVH node visit: child fetch plus slab-test arithmetic.
  B.setInsertBlock(TraverseNode);
  unsigned Child = emitTableLoad(B, Node, TableWords);
  unsigned NNext = B.add(Operand::reg(Node), Operand::reg(Child));
  emitMove(TraverseNode, Node, NNext);
  unsigned T = B.add(Operand::reg(Image), Operand::reg(Child));
  T = emitAluChain(B, T, static_cast<int>(NodeOps), 62089911);
  emitMove(TraverseNode, Image, T);
  unsigned LNext = B.add(Operand::reg(Level), Operand::imm(1));
  emitMove(TraverseNode, Level, LNext);
  B.jmp(TraverseHeader);

  // Hit or miss: both paths shade (environment vs surface), divergently.
  B.setInsertBlock(Classify);
  unsigned Roll = B.randRange(Operand::imm(0), Operand::imm(100));
  unsigned Hit = B.cmpLT(Operand::reg(Roll), Operand::imm(70));
  B.br(Operand::reg(Hit), HitPath, MissPath);

  B.setInsertBlock(HitPath);
  unsigned SurfColor = B.call(Shade, {Operand::reg(Node)});
  unsigned H = B.add(Operand::reg(Image), Operand::reg(SurfColor));
  emitMove(HitPath, Image, H);
  B.jmp(WriteBack);

  B.setInsertBlock(MissPath);
  unsigned EnvColor = B.call(Shade, {Operand::reg(Roll)});
  unsigned Dimmed = B.shr(Operand::reg(EnvColor), Operand::imm(2));
  unsigned Mi = B.xorOp(Operand::reg(Image), Operand::reg(Dimmed));
  emitMove(MissPath, Image, Mi);
  B.jmp(WriteBack);

  B.setInsertBlock(WriteBack);
  unsigned RNext = B.add(Operand::reg(Ray), Operand::imm(1));
  emitMove(WriteBack, Ray, RNext);
  unsigned Done = B.cmpGE(Operand::reg(Ray), Operand::imm(Rays));
  B.br(Operand::reg(Done), Exit, Generate);

  B.setInsertBlock(Exit);
  unsigned Slot = B.add(Operand::reg(Tid), Operand::imm(ResultBase));
  B.store(Operand::reg(Slot), Operand::reg(Image));
  B.ret();

  F->recomputePreds();

  W.InitMemory = [TableWords](WarpSimulator &Sim) {
    uint64_t Seed = 0x853c49e6748fea9bull;
    for (int64_t I = 0; I < TableWords; ++I)
      Sim.setMemory(static_cast<uint64_t>(TableBase + I),
                    static_cast<int64_t>(splitMix64(Seed) % 61));
  };
  return W;
}
