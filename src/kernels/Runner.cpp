//===- Runner.cpp - Workload execution helper -----------------------------------===//

#include "kernels/Runner.h"

#include "observe/Remark.h"

#include <cassert>

using namespace simtsr;

Workload simtsr::cloneWorkload(const Workload &W) {
  Workload Copy;
  Copy.Name = W.Name;
  Copy.Description = W.Description;
  Copy.Pattern = W.Pattern;
  Copy.KernelName = W.KernelName;
  Copy.Latency = W.Latency;
  Copy.Args = W.Args;
  Copy.InitMemory = W.InitMemory;
  Copy.Scale = W.Scale;
  Copy.RecommendedSoftThreshold = W.RecommendedSoftThreshold;
  Copy.M = W.M->clone();
  return Copy;
}

WorkloadOutcome simtsr::runWorkload(const Workload &W,
                                    const PipelineSpec &Spec,
                                    uint64_t Seed, SchedulerPolicy Policy) {
  Workload Fresh = cloneWorkload(W);
  WorkloadOutcome Outcome;
  Outcome.Pipeline = runSyncPipeline(*Fresh.M, Spec);
  // One verification for the run; the simulator reuses it and reports any
  // pipeline-produced malformation as a Malformed run in release builds.
  const LaunchVerification Verification = verifyLaunchModule(*Fresh.M);
  assert(Verification.Errors.empty() && "pipeline produced malformed IR");

  Function *Kernel = Fresh.M->functionByName(Fresh.KernelName);
  assert(Kernel && "workload kernel not found");
  LaunchConfig Config;
  Config.Seed = Seed;
  Config.Policy = Policy;
  Config.Latency = Fresh.Latency;
  Config.KernelArgs = Fresh.Args;
  Config.Verified = &Verification;
  WarpSimulator Sim(*Fresh.M, Kernel, Config);
  if (Fresh.InitMemory)
    Fresh.InitMemory(Sim);
  RunResult R = Sim.run();
  Outcome.Status = R.St;
  Outcome.TrapMessage = R.TrapMessage;
  Outcome.SimtEfficiency = R.Stats.simtEfficiency();
  Outcome.Cycles = R.Stats.Cycles;
  Outcome.IssueSlots = R.Stats.IssueSlots;
  Outcome.Checksum = Sim.memoryChecksum();
  return Outcome;
}

GridResult simtsr::runWorkloadGrid(const Workload &W,
                                   const PipelineSpec &Spec,
                                   unsigned Warps, uint64_t Seed) {
  Workload Fresh = cloneWorkload(W);
  runSyncPipeline(*Fresh.M, Spec);
  const LaunchVerification Verification = verifyLaunchModule(*Fresh.M);
  assert(Verification.Errors.empty() && "pipeline produced malformed IR");
  Function *Kernel = Fresh.M->functionByName(Fresh.KernelName);
  assert(Kernel && "workload kernel not found");
  LaunchConfig Config;
  Config.Seed = Seed;
  Config.Latency = Fresh.Latency;
  Config.KernelArgs = Fresh.Args;
  Config.Verified = &Verification;
  return runGrid(*Fresh.M, Kernel, Config, Warps, Fresh.InitMemory);
}

uint64_t simtsr::workloadTraceDigest(const Workload &W,
                                     const PipelineSpec &Spec,
                                     SchedulerPolicy Policy, unsigned Warps,
                                     uint64_t Seed) {
  Workload Fresh = cloneWorkload(W);
  runSyncPipeline(*Fresh.M, Spec);
  const LaunchVerification Verification = verifyLaunchModule(*Fresh.M);
  assert(Verification.Errors.empty() && "pipeline produced malformed IR");
  Function *Kernel = Fresh.M->functionByName(Fresh.KernelName);
  assert(Kernel && "workload kernel not found");
  LaunchConfig Config;
  Config.Seed = Seed;
  Config.Policy = Policy;
  Config.Latency = Fresh.Latency;
  Config.KernelArgs = Fresh.Args;
  Config.Verified = &Verification;
  Config.CollectTraceDigest = true;
  return runGrid(*Fresh.M, Kernel, Config, Warps, Fresh.InitMemory)
      .TraceDigest;
}

ProgressProbe simtsr::workloadProgressProbe(const Workload &W,
                                            const PipelineSpec &Spec,
                                            SchedulerPolicy Policy,
                                            unsigned Warps, uint64_t Seed,
                                            const ProgressSpec &Progress) {
  Workload Fresh = cloneWorkload(W);
  runSyncPipeline(*Fresh.M, Spec);
  const LaunchVerification Verification = verifyLaunchModule(*Fresh.M);
  assert(Verification.Errors.empty() && "pipeline produced malformed IR");
  Function *Kernel = Fresh.M->functionByName(Fresh.KernelName);
  assert(Kernel && "workload kernel not found");
  LaunchConfig Config;
  Config.Seed = Seed;
  Config.Policy = Policy;
  Config.Progress = Progress;
  Config.Latency = Fresh.Latency;
  Config.KernelArgs = Fresh.Args;
  Config.Verified = &Verification;
  Config.CollectTraceDigest = true;
  const GridResult G = runGrid(*Fresh.M, Kernel, Config, Warps,
                               Fresh.InitMemory);
  ProgressProbe Probe;
  Probe.Status = G.Ok ? RunResult::Status::Finished : G.FailStatus;
  Probe.TraceDigest = G.TraceDigest;
  return Probe;
}

TracedWorkloadResult
simtsr::runWorkloadTraced(const Workload &W, const PipelineSpec &Spec,
                          SchedulerPolicy Policy, unsigned Warps,
                          uint64_t Seed, observe::RemarkStream *Remarks,
                          size_t MaxEventsPerWarp, ProgressSpec Progress) {
  TracedWorkloadResult Result;
  Result.Compiled = cloneWorkload(W);
  PipelineSpec Piped = Spec;
  Piped.Params.Remarks = Remarks;
  Result.Pipeline = runSyncPipeline(*Result.Compiled.M, Piped);
  const LaunchVerification Verification =
      verifyLaunchModule(*Result.Compiled.M);
  assert(Verification.Errors.empty() && "pipeline produced malformed IR");
  Function *Kernel =
      Result.Compiled.M->functionByName(Result.Compiled.KernelName);
  assert(Kernel && "workload kernel not found");

  LaunchConfig Base;
  Base.Seed = Seed;
  Base.Policy = Policy;
  Base.Progress = Progress;
  Base.Latency = Result.Compiled.Latency;
  Base.KernelArgs = Result.Compiled.Args;
  Base.Verified = &Verification;
  Base.CollectTraceDigest = true;

  // Warp by warp with a recorder attached, on the exact per-warp configs
  // the grid derives; the folded digest therefore matches the grid's.
  for (unsigned Wi = 0; Wi < Warps; ++Wi) {
    observe::TraceRecorder Recorder(MaxEventsPerWarp);
    LaunchConfig Config = gridWarpConfig(Base, Wi);
    Config.Trace = &Recorder;
    WarpSimulator Sim(*Result.Compiled.M, Kernel, Config);
    if (Result.Compiled.InitMemory)
      Result.Compiled.InitMemory(Sim);
    RunResult R = Sim.run();

    WarpTrace Trace;
    Trace.WarpIndex = Wi;
    Trace.Status = R.St;
    Trace.TrapMessage = R.TrapMessage;
    Trace.Digest = Recorder.digest();
    Trace.Truncated = Recorder.truncated();
    Trace.Events = Recorder.events();
    Result.Warps.push_back(std::move(Trace));

    Result.TraceDigest =
        observe::combineTraceDigests(Result.TraceDigest, R.TraceDigest);
    Result.Cycles += R.Stats.Cycles;
    Result.IssueSlots += R.Stats.IssueSlots;
    if (!R.ok()) {
      Result.Ok = false;
      break; // The grid reduction stops at the first failing warp too.
    }
  }
  return Result;
}

int simtsr::autotuneSoftThreshold(const Workload &Pilot, uint64_t Seed,
                                  int Step) {
  assert(Step > 0 && "sweep step must be positive");
  int Best = 0;
  uint64_t BestCycles = ~0ull;
  for (int Threshold = 0; Threshold <= 32; Threshold += Step) {
    WorkloadOutcome O =
        runWorkload(Pilot, PipelineOptions::softBarrier(Threshold), Seed);
    if (O.ok() && O.Cycles < BestCycles) {
      BestCycles = O.Cycles;
      Best = Threshold;
    }
  }
  return Best;
}
