//===- XSBench.cpp - Monte Carlo neutron transport (pointwise) ----------------===//
///
/// \file
/// XSBench [Tramm et al.]: simulates the same macroscopic cross-section
/// lookup problem as RSBench but with the pointwise data layout, making it
/// memory bound. The nested divergent loop has both an expensive inner
/// loop (per-nuclide grid loads) and an expensive epilog (the energy-grid
/// binary search, a chain of dependent loads) — which is why Figure 9
/// shows XSBench peaking at a *small* soft-barrier threshold: refilling an
/// idle thread costs a full lookup, so it pays to keep running until only
/// a few lanes remain.
///
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuild.h"
#include "kernels/Workload.h"
#include "sim/Warp.h"

using namespace simtsr;
using namespace simtsr::kernelbuild;

Workload simtsr::makeXSBench(double Scale) {
  Workload W;
  W.Name = "xsbench";
  W.Description = "Monte Carlo neutron transport, pointwise cross-section "
                  "lookup (memory bound)";
  W.Pattern = DivergencePattern::LoopMerge;
  W.KernelName = "xsbench";
  W.Latency = LatencyModel::memoryBound();
  W.Scale = Scale;
  // Figure 9: XSBench peaks when threads run until only ~4 lanes remain.
  W.RecommendedSoftThreshold = 4;

  const int64_t NumMaterials = 12;
  const int64_t Tasks = scaled(6, Scale);
  const int64_t TableWords = 4096;
  // Binary-search depth of the unionized energy grid (dependent loads).
  const int64_t SearchDepth = 5;

  W.M = std::make_unique<Module>();
  W.M->setGlobalMemoryWords(1 << 14);
  Function *F = W.M->createFunction("xsbench", 0);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Prolog = F->createBlock("prolog");
  BasicBlock *InnerHeader = F->createBlock("inner_header");
  BasicBlock *InnerBody = F->createBlock("inner_body");
  BasicBlock *Epilog = F->createBlock("epilog");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  unsigned Tid = B.tid();
  unsigned Task = B.mov(Operand::imm(0));
  unsigned Acc = B.mov(Operand::imm(1));
  B.predict(InnerBody);
  B.jmp(Prolog);

  // Prolog: sample a particle (material + energy).
  B.setInsertBlock(Prolog);
  unsigned Mat = B.randRange(Operand::imm(0), Operand::imm(NumMaterials));
  unsigned NAddr = B.add(Operand::reg(Mat), Operand::imm(TableBase));
  unsigned Nuclides = B.load(Operand::reg(NAddr));
  unsigned Energy = B.randRange(Operand::imm(0), Operand::imm(TableWords));
  unsigned J = B.mov(Operand::imm(0));
  B.jmp(InnerHeader);

  B.setInsertBlock(InnerHeader);
  unsigned More = B.cmpLT(Operand::reg(J), Operand::reg(Nuclides));
  B.br(Operand::reg(More), InnerBody, Epilog);

  // Inner body: two gridpoint loads per nuclide plus interpolation.
  B.setInsertBlock(InnerBody);
  unsigned Key = B.add(Operand::reg(Energy), Operand::reg(J));
  unsigned V1 = emitTableLoad(B, Key, TableWords);
  unsigned Key2 = B.add(Operand::reg(Key), Operand::reg(V1));
  unsigned V2 = emitTableLoad(B, Key2, TableWords);
  unsigned Sum = B.add(Operand::reg(V1), Operand::reg(V2));
  unsigned X = B.xorOp(Operand::reg(Acc), Operand::reg(Sum));
  X = emitAluChain(B, X, 2, 2654435761);
  emitMove(InnerBody, Acc, X);
  unsigned JNext = B.add(Operand::reg(J), Operand::imm(1));
  emitMove(InnerBody, J, JNext);
  B.jmp(InnerHeader);

  // Epilog: binary search on the unionized grid — a chain of *dependent*
  // loads; this is the expensive per-task refill cost.
  B.setInsertBlock(Epilog);
  unsigned Cursor = B.xorOp(Operand::reg(Acc), Operand::reg(Energy));
  for (int64_t S = 0; S < SearchDepth; ++S) {
    unsigned Probe = emitTableLoad(B, Cursor, TableWords);
    unsigned Next = B.add(Operand::reg(Cursor), Operand::reg(Probe));
    Cursor = B.xorOp(Operand::reg(Next), Operand::imm(0x5bd1e995 + S));
  }
  unsigned Y = B.add(Operand::reg(Acc), Operand::reg(Cursor));
  emitMove(Epilog, Acc, Y);
  unsigned TNext = B.add(Operand::reg(Task), Operand::imm(1));
  emitMove(Epilog, Task, TNext);
  unsigned Done = B.cmpGE(Operand::reg(Task), Operand::imm(Tasks));
  B.br(Operand::reg(Done), Exit, Prolog);

  B.setInsertBlock(Exit);
  unsigned Slot = B.add(Operand::reg(Tid), Operand::imm(ResultBase));
  B.store(Operand::reg(Slot), Operand::reg(Acc));
  B.atomicAdd(Operand::imm(CounterWord), Operand::imm(1));
  B.ret();

  F->recomputePreds();

  W.InitMemory = [NumMaterials, TableWords, Scale](WarpSimulator &Sim) {
    // Nuclide counts: pointwise XSBench sweeps fewer nuclides per lookup
    // than RSBench but still divergently (1..60 scaled).
    static const int64_t Counts[12] = {34, 3, 2, 6, 12, 60,
                                       21, 9, 2, 45, 10, 16};
    for (int64_t I = 0; I < NumMaterials; ++I)
      Sim.setMemory(static_cast<uint64_t>(TableBase + I),
                    scaled(Counts[I], Scale));
    // Energy grid contents: deterministic pseudo-random positive words.
    uint64_t Seed = 0x9e3779b97f4a7c15ull;
    for (int64_t I = NumMaterials; I < TableWords; ++I)
      Sim.setMemory(static_cast<uint64_t>(TableBase + I),
                    static_cast<int64_t>(splitMix64(Seed) >> 40));
  };
  return W;
}
