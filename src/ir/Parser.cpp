//===- Parser.cpp - Textual IR parsing --------------------------------------===//

#include "ir/Parser.h"

#include "ir/Opcode.h"

#include <cctype>
#include <map>
#include <optional>

using namespace simtsr;

namespace {

struct Token {
  enum class Kind {
    Ident,   // func, opcode mnemonics, block labels, reconverge_entry
    Int,     // 123 or -123
    Reg,     // %5
    Barrier, // b3 — only produced on demand by the parser, lexed as Ident
    At,      // @
    Comma,
    Colon,
    Equals,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Newline,
    End,
  };
  Kind K;
  std::string Text;
  int64_t Value = 0;
  unsigned Line = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(Text) {}

  std::vector<Token> run(std::vector<std::string> &Errors) {
    std::vector<Token> Tokens;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (C == '\n') {
        Tokens.push_back({Token::Kind::Newline, "\n", 0, Line});
        ++Line;
        ++Pos;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == '%') {
        ++Pos;
        auto Num = lexNumber();
        if (!Num) {
          Errors.push_back(lineMsg("expected register number after '%'"));
          return Tokens;
        }
        Tokens.push_back({Token::Kind::Reg, "%", *Num, Line});
        continue;
      }
      if (C == '-' || std::isdigit(static_cast<unsigned char>(C))) {
        bool Negative = C == '-';
        if (Negative)
          ++Pos;
        auto Num = lexNumber();
        if (!Num) {
          Errors.push_back(lineMsg("expected digits"));
          return Tokens;
        }
        Tokens.push_back(
            {Token::Kind::Int, "", Negative ? -*Num : *Num, Line});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.') {
        size_t Start = Pos;
        while (Pos < Text.size() &&
               (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
                Text[Pos] == '_' || Text[Pos] == '.'))
          ++Pos;
        Tokens.push_back({Token::Kind::Ident,
                          Text.substr(Start, Pos - Start), 0, Line});
        continue;
      }
      Token::Kind K;
      switch (C) {
      case '@':
        K = Token::Kind::At;
        break;
      case ',':
        K = Token::Kind::Comma;
        break;
      case ':':
        K = Token::Kind::Colon;
        break;
      case '=':
        K = Token::Kind::Equals;
        break;
      case '{':
        K = Token::Kind::LBrace;
        break;
      case '}':
        K = Token::Kind::RBrace;
        break;
      case '(':
        K = Token::Kind::LParen;
        break;
      case ')':
        K = Token::Kind::RParen;
        break;
      default:
        Errors.push_back(lineMsg(std::string("unexpected character '") + C +
                                 "'"));
        return Tokens;
      }
      Tokens.push_back({K, std::string(1, C), 0, Line});
      ++Pos;
    }
    Tokens.push_back({Token::Kind::End, "", 0, Line});
    return Tokens;
  }

private:
  std::optional<int64_t> lexNumber() {
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return std::nullopt;
    int64_t V = 0;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      V = V * 10 + (Text[Pos] - '0');
      ++Pos;
    }
    return V;
  }

  std::string lineMsg(const std::string &Msg) const {
    return "line " + std::to_string(Line + 1) + ": " + Msg;
  }

  const std::string &Text;
  size_t Pos = 0;
  unsigned Line = 0;
};

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<std::string> &Errors)
      : Tokens(std::move(Tokens)), Errors(Errors) {
    for (unsigned I = 0; I < NumOpcodes; ++I)
      OpcodeByName[getOpcodeName(static_cast<Opcode>(I))] =
          static_cast<Opcode>(I);
  }

  std::unique_ptr<Module> run() {
    auto M = std::make_unique<Module>();
    skipNewlines();
    if (peek().K == Token::Kind::Ident && peek().Text == "memory") {
      next();
      if (!expect(Token::Kind::Int, "memory size"))
        return nullptr;
      M->setGlobalMemoryWords(static_cast<uint64_t>(Prev.Value));
      if (!expectNewline())
        return nullptr;
    }
    // First pass: register function signatures for forward references.
    preScanFunctions(*M);
    if (!Errors.empty())
      return nullptr;
    skipNewlines();
    while (peek().K != Token::Kind::End) {
      if (!parseFunction(*M))
        return nullptr;
      skipNewlines();
    }
    return M;
  }

private:
  const Token &peek() const { return Tokens[Cursor]; }
  const Token &next() {
    Prev = Tokens[Cursor];
    if (Tokens[Cursor].K != Token::Kind::End)
      ++Cursor;
    return Prev;
  }
  void skipNewlines() {
    while (peek().K == Token::Kind::Newline)
      next();
  }
  void error(const std::string &Msg) {
    Errors.push_back("line " + std::to_string(peek().Line + 1) + ": " + Msg);
  }
  bool expect(Token::Kind K, const std::string &What) {
    if (peek().K != K) {
      error("expected " + What);
      return false;
    }
    next();
    return true;
  }
  bool expectIdent(const std::string &Word) {
    if (peek().K != Token::Kind::Ident || peek().Text != Word) {
      error("expected '" + Word + "'");
      return false;
    }
    next();
    return true;
  }
  bool expectNewline() {
    if (peek().K == Token::Kind::End)
      return true;
    return expect(Token::Kind::Newline, "end of line");
  }

  /// Scans the token stream for `func @name ( N )` headers and creates the
  /// (empty) functions so that calls may reference them in any order.
  void preScanFunctions(Module &M) {
    for (size_t I = 0; I + 5 < Tokens.size(); ++I) {
      if (Tokens[I].K != Token::Kind::Ident || Tokens[I].Text != "func")
        continue;
      if (Tokens[I + 1].K != Token::Kind::At ||
          Tokens[I + 2].K != Token::Kind::Ident ||
          Tokens[I + 3].K != Token::Kind::LParen ||
          Tokens[I + 4].K != Token::Kind::Int ||
          Tokens[I + 5].K != Token::Kind::RParen) {
        Errors.push_back("line " + std::to_string(Tokens[I].Line + 1) +
                         ": malformed function header");
        return;
      }
      if (M.functionByName(Tokens[I + 2].Text)) {
        Errors.push_back("line " + std::to_string(Tokens[I].Line + 1) +
                         ": duplicate function '@" + Tokens[I + 2].Text +
                         "'");
        return;
      }
      M.createFunction(Tokens[I + 2].Text,
                       static_cast<unsigned>(Tokens[I + 4].Value));
    }
  }

  bool parseFunction(Module &M) {
    if (!expectIdent("func") || !expect(Token::Kind::At, "'@'") ||
        !expect(Token::Kind::Ident, "function name"))
      return false;
    Function *F = M.functionByName(Prev.Text);
    assert(F && "pre-scan must have created the function");
    if (!expect(Token::Kind::LParen, "'('") ||
        !expect(Token::Kind::Int, "parameter count") ||
        !expect(Token::Kind::RParen, "')'"))
      return false;
    if (peek().K == Token::Kind::Ident &&
        peek().Text == "reconverge_entry") {
      next();
      F->setReconvergeAtEntry(true);
    }
    if (!expect(Token::Kind::LBrace, "'{'"))
      return false;

    // Pre-create blocks: any `IDENT :` at the start of a line is a label.
    preScanBlocks(*F);
    if (!Errors.empty())
      return false;

    skipNewlines();
    BasicBlock *Current = nullptr;
    while (peek().K != Token::Kind::RBrace) {
      if (peek().K == Token::Kind::End) {
        error("unexpected end of input inside function");
        return false;
      }
      // Label line?
      if (peek().K == Token::Kind::Ident &&
          Cursor + 1 < Tokens.size() &&
          Tokens[Cursor + 1].K == Token::Kind::Colon) {
        Current = F->blockByName(peek().Text);
        assert(Current && "pre-scan must have created the block");
        next();
        next();
        if (!expectNewline())
          return false;
        skipNewlines();
        continue;
      }
      if (!Current) {
        error("instruction before first block label");
        return false;
      }
      if (!parseInstruction(M, *F, *Current))
        return false;
      skipNewlines();
    }
    next(); // consume '}'
    F->recomputePreds();
    return true;
  }

  /// Creates this function's blocks, in order, from label lines between the
  /// current '{' and its matching '}'.
  void preScanBlocks(Function &F) {
    bool AtLineStart = true;
    for (size_t I = Cursor; I < Tokens.size(); ++I) {
      if (Tokens[I].K == Token::Kind::RBrace)
        return;
      if (Tokens[I].K == Token::Kind::Newline) {
        AtLineStart = true;
        continue;
      }
      if (AtLineStart && Tokens[I].K == Token::Kind::Ident &&
          I + 1 < Tokens.size() && Tokens[I + 1].K == Token::Kind::Colon) {
        if (F.blockByName(Tokens[I].Text)) {
          Errors.push_back("line " + std::to_string(Tokens[I].Line + 1) +
                           ": duplicate block label '" + Tokens[I].Text +
                           "'");
          return;
        }
        F.createBlock(Tokens[I].Text);
      }
      AtLineStart = false;
    }
    Errors.push_back("missing '}' at end of function");
  }

  std::optional<Operand> parseValueOperand(Function &F) {
    if (peek().K == Token::Kind::Reg) {
      unsigned R = static_cast<unsigned>(next().Value);
      F.reserveRegsThrough(R);
      return Operand::reg(R);
    }
    if (peek().K == Token::Kind::Int)
      return Operand::imm(next().Value);
    error("expected register or immediate");
    return std::nullopt;
  }

  std::optional<Operand> parseBlockOperand(Function &F) {
    if (peek().K != Token::Kind::Ident) {
      error("expected block label");
      return std::nullopt;
    }
    BasicBlock *BB = F.blockByName(next().Text);
    if (!BB) {
      error("unknown block '" + Prev.Text + "'");
      return std::nullopt;
    }
    return Operand::block(BB);
  }

  std::optional<Operand> parseBarrierOperand() {
    if (peek().K != Token::Kind::Ident || peek().Text.size() < 2 ||
        peek().Text[0] != 'b' ||
        !std::isdigit(static_cast<unsigned char>(peek().Text[1]))) {
      error("expected barrier register (e.g. b0)");
      return std::nullopt;
    }
    unsigned B = 0;
    for (size_t I = 1; I < peek().Text.size(); ++I) {
      if (!std::isdigit(static_cast<unsigned char>(peek().Text[I]))) {
        error("malformed barrier register");
        return std::nullopt;
      }
      B = B * 10 + static_cast<unsigned>(peek().Text[I] - '0');
    }
    next();
    return Operand::barrier(B);
  }

  bool parseInstruction(Module &M, Function &F, BasicBlock &BB) {
    unsigned Dst = NoRegister;
    if (peek().K == Token::Kind::Reg) {
      Dst = static_cast<unsigned>(next().Value);
      F.reserveRegsThrough(Dst);
      if (!expect(Token::Kind::Equals, "'='"))
        return false;
    }
    if (peek().K != Token::Kind::Ident) {
      error("expected opcode mnemonic");
      return false;
    }
    auto It = OpcodeByName.find(peek().Text);
    if (It == OpcodeByName.end()) {
      error("unknown opcode '" + peek().Text + "'");
      return false;
    }
    next();
    Opcode Op = It->second;
    const OpcodeInfo &Info = getOpcodeInfo(Op);
    if (Info.HasDst != (Dst != NoRegister)) {
      error(Info.HasDst ? "opcode requires a destination"
                        : "opcode takes no destination");
      return false;
    }

    std::vector<Operand> Ops;
    bool First = true;
    while (peek().K != Token::Kind::Newline &&
           peek().K != Token::Kind::End) {
      if (!First && !expect(Token::Kind::Comma, "','"))
        return false;
      First = false;
      auto O = parseOperand(M, F, Op, static_cast<unsigned>(Ops.size()));
      if (!O)
        return false;
      Ops.push_back(*O);
    }
    BB.instructions().push_back(Instruction(Op, Dst, std::move(Ops)));
    return expectNewline();
  }

  std::optional<Operand> parseOperand(Module &M, Function &F, Opcode Op,
                                      unsigned Index) {
    switch (Op) {
    case Opcode::Br:
      if (Index >= 1)
        return parseBlockOperand(F);
      return parseValueOperand(F);
    case Opcode::Jmp:
    case Opcode::Predict:
      return parseBlockOperand(F);
    case Opcode::JoinBarrier:
    case Opcode::WaitBarrier:
    case Opcode::CancelBarrier:
    case Opcode::RejoinBarrier:
    case Opcode::ArrivedCount:
      return parseBarrierOperand();
    case Opcode::SoftWait:
      if (Index == 0)
        return parseBarrierOperand();
      return parseValueOperand(F);
    case Opcode::Call: {
      if (Index > 0)
        return parseValueOperand(F);
      if (!expect(Token::Kind::At, "'@'") ||
          !expect(Token::Kind::Ident, "function name"))
        return std::nullopt;
      Function *Callee = M.functionByName(Prev.Text);
      if (!Callee) {
        error("unknown function '@" + Prev.Text + "'");
        return std::nullopt;
      }
      return Operand::func(Callee);
    }
    default:
      return parseValueOperand(F);
    }
  }

  std::vector<Token> Tokens;
  std::vector<std::string> &Errors;
  size_t Cursor = 0;
  Token Prev{Token::Kind::End, "", 0, 0};
  std::map<std::string, Opcode> OpcodeByName;
};

} // namespace

ParseResult simtsr::parseModule(const std::string &Text) {
  ParseResult Result;
  Lexer Lex(Text);
  std::vector<Token> Tokens = Lex.run(Result.Errors);
  if (!Result.Errors.empty())
    return Result;
  Parser P(std::move(Tokens), Result.Errors);
  auto M = P.run();
  if (!Result.Errors.empty())
    return Result;
  Result.M = std::move(M);
  return Result;
}
