//===- CFGUtils.h - CFG manipulation and traversal helpers -----*- C++ -*-===//
///
/// \file
/// Edge splitting, reverse-post-order computation and reachability — shared
/// by the analyses and the synchronization-insertion passes.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_CFGUTILS_H
#define SIMTSR_IR_CFGUTILS_H

#include "ir/Function.h"

#include <string>
#include <vector>

namespace simtsr {

/// \returns a block name starting with \p Prefix that is unused in \p F.
std::string uniqueBlockName(Function &F, const std::string &Prefix);

/// Splits the CFG edge From -> To by inserting a fresh block containing only
/// a jump to \p To, and retargets every matching terminator operand of
/// \p From. \returns the new block. Caller must recomputePreds() afterwards.
BasicBlock *splitEdge(Function &F, BasicBlock *From, BasicBlock *To);

/// Splits \p BB after instruction \p Index: instructions [Index+1, end)
/// move to a fresh block and \p BB is terminated with a jump to it.
/// \returns the new block. Caller must recomputePreds() afterwards.
BasicBlock *splitBlockAfter(Function &F, BasicBlock *BB, size_t Index);

/// \returns blocks of \p F in reverse post order from the entry block.
/// Unreachable blocks are appended after the RPO in layout order so that
/// dense analyses still cover them.
std::vector<BasicBlock *> reversePostOrder(Function &F);

/// \returns the set (as a dense bool vector indexed by block number) of
/// blocks from which \p Target is reachable, including \p Target itself.
/// Assumes block numbers are current (Function::renumberBlocks()).
std::vector<bool> blocksReaching(Function &F, BasicBlock *Target);

/// \returns the set of blocks reachable from \p Source, inclusive.
std::vector<bool> blocksReachableFrom(Function &F, BasicBlock *Source);

} // namespace simtsr

#endif // SIMTSR_IR_CFGUTILS_H
