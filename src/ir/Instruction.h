//===- Instruction.h - SIMT IR instruction ---------------------*- C++ -*-===//
///
/// \file
/// A flat instruction: opcode, optional destination register, and a small
/// operand list. Instructions are stored by value inside basic blocks, so
/// passes address them positionally rather than by pointer.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_INSTRUCTION_H
#define SIMTSR_IR_INSTRUCTION_H

#include "ir/Opcode.h"
#include "ir/Operand.h"

#include <vector>

namespace simtsr {

/// Sentinel for "no destination register".
constexpr unsigned NoRegister = ~0u;

class Instruction {
public:
  Instruction(Opcode Op, unsigned Dst, std::vector<Operand> Operands)
      : Op(Op), Dst(Dst), Operands(std::move(Operands)) {}

  Opcode opcode() const { return Op; }
  bool hasDst() const { return Dst != NoRegister; }
  unsigned dst() const {
    assert(hasDst() && "instruction has no destination");
    return Dst;
  }
  void setDst(unsigned R) { Dst = R; }

  unsigned numOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  const Operand &operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  Operand &operand(unsigned I) {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  const std::vector<Operand> &operands() const { return Operands; }

  bool isTerminator() const { return getOpcodeInfo(Op).IsTerminator; }

  /// \returns the barrier id for barrier-manipulating opcodes.
  unsigned barrierId() const {
    assert(isBarrierOp(Op) && "not a barrier instruction");
    return Operands[0].getBarrier();
  }

  friend bool operator==(const Instruction &A, const Instruction &B) {
    return A.Op == B.Op && A.Dst == B.Dst && A.Operands == B.Operands;
  }

private:
  Opcode Op;
  unsigned Dst;
  std::vector<Operand> Operands;
};

} // namespace simtsr

#endif // SIMTSR_IR_INSTRUCTION_H
