//===- Function.h - SIMT IR function ---------------------------*- C++ -*-===//
///
/// \file
/// A function owns its basic blocks (stable pointers; block operands refer
/// to them) and a virtual-register namespace. Parameters occupy registers
/// 0..numParams()-1. The entry block is the first block.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_FUNCTION_H
#define SIMTSR_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace simtsr {

class Module;

class Function {
public:
  Function(Module *Parent, std::string Name, unsigned NumParams)
      : Parent(Parent), Name(std::move(Name)), NumParams(NumParams),
        NextReg(NumParams) {}

  const std::string &name() const { return Name; }
  Module *parent() const { return Parent; }
  unsigned numParams() const { return NumParams; }

  /// Allocates a fresh virtual register.
  unsigned createReg() { return NextReg++; }
  unsigned numRegs() const { return NextReg; }
  /// Bumps the register counter to cover \p R; used by the parser.
  void reserveRegsThrough(unsigned R) {
    if (R != NoRegister && R >= NextReg)
      NextReg = R + 1;
  }

  /// Creates a block appended to the block list. \p Name must be unique
  /// within the function (the verifier checks).
  BasicBlock *createBlock(std::string Name);

  /// Creates a block inserted immediately after \p After in the block list.
  /// Layout order has no semantic meaning but keeps printed IR readable.
  BasicBlock *createBlockAfter(BasicBlock *After, std::string Name);

  /// Removes \p BB (must not be the entry block). The caller must have
  /// removed every operand reference to it first; renumbers blocks.
  void removeBlock(BasicBlock *BB);

  bool empty() const { return Blocks.empty(); }
  size_t size() const { return Blocks.size(); }
  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }
  BasicBlock *block(size_t I) const {
    assert(I < Blocks.size() && "block index out of range");
    return Blocks[I].get();
  }
  /// \returns the block named \p Name, or nullptr.
  BasicBlock *blockByName(const std::string &Name) const;

  /// Iteration over blocks in layout order.
  auto begin() { return BlockPtrIterator(Blocks.begin()); }
  auto end() { return BlockPtrIterator(Blocks.end()); }
  auto begin() const { return ConstBlockPtrIterator(Blocks.begin()); }
  auto end() const { return ConstBlockPtrIterator(Blocks.end()); }

  /// Recomputes every block's predecessor list and block numbers. Call after
  /// mutating terminators or adding blocks; analyses call it on entry.
  void recomputePreds();

  /// Reassigns dense block numbers in layout order.
  void renumberBlocks();

  /// When set, the interprocedural pass treats this function's entry as a
  /// reconvergence point: all callers gather before executing the body
  /// (Section 4.4's function-name user interface).
  bool reconvergeAtEntry() const { return ReconvergeAtEntryFlag; }
  void setReconvergeAtEntry(bool V) { ReconvergeAtEntryFlag = V; }

private:
  // Thin iterator adapters exposing BasicBlock* from unique_ptr storage.
  struct BlockPtrIterator {
    std::vector<std::unique_ptr<BasicBlock>>::iterator It;
    explicit BlockPtrIterator(
        std::vector<std::unique_ptr<BasicBlock>>::iterator It)
        : It(It) {}
    BasicBlock *operator*() const { return It->get(); }
    BlockPtrIterator &operator++() {
      ++It;
      return *this;
    }
    bool operator!=(const BlockPtrIterator &O) const { return It != O.It; }
  };
  struct ConstBlockPtrIterator {
    std::vector<std::unique_ptr<BasicBlock>>::const_iterator It;
    explicit ConstBlockPtrIterator(
        std::vector<std::unique_ptr<BasicBlock>>::const_iterator It)
        : It(It) {}
    const BasicBlock *operator*() const { return It->get(); }
    ConstBlockPtrIterator &operator++() {
      ++It;
      return *this;
    }
    bool operator!=(const ConstBlockPtrIterator &O) const {
      return It != O.It;
    }
  };

  Module *Parent;
  std::string Name;
  unsigned NumParams;
  unsigned NextReg;
  bool ReconvergeAtEntryFlag = false;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace simtsr

#endif // SIMTSR_IR_FUNCTION_H
