//===- BasicBlock.cpp - SIMT IR basic block -------------------------------===//

#include "ir/BasicBlock.h"

#include <cstddef>

using namespace simtsr;

void BasicBlock::append(Instruction I) {
  assert(!hasTerminator() && "appending past a terminator");
  Insts.push_back(std::move(I));
}

void BasicBlock::insert(size_t Index, Instruction I) {
  assert(Index <= Insts.size() && "insert position out of range");
  Insts.insert(Insts.begin() + static_cast<ptrdiff_t>(Index), std::move(I));
}

void BasicBlock::insertBeforeTerminator(Instruction I) {
  assert(hasTerminator() && "block has no terminator");
  insert(Insts.size() - 1, std::move(I));
}

void BasicBlock::erase(size_t Index) {
  assert(Index < Insts.size() && "erase position out of range");
  Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Index));
}

bool BasicBlock::hasTerminator() const {
  return !Insts.empty() && Insts.back().isTerminator();
}

const Instruction &BasicBlock::terminator() const {
  assert(hasTerminator() && "block has no terminator");
  return Insts.back();
}

Instruction &BasicBlock::terminator() {
  assert(hasTerminator() && "block has no terminator");
  return Insts.back();
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Succs;
  if (!hasTerminator())
    return Succs;
  const Instruction &Term = terminator();
  for (const Operand &O : Term.operands())
    if (O.isBlock())
      Succs.push_back(O.getBlock());
  return Succs;
}

size_t BasicBlock::firstRealIndex() const {
  size_t I = 0;
  while (I < Insts.size() && (Insts[I].opcode() == Opcode::Predict ||
                              isBarrierOp(Insts[I].opcode())))
    ++I;
  return I;
}
