//===- Function.cpp - SIMT IR function ------------------------------------===//

#include "ir/Function.h"

#include <algorithm>

using namespace simtsr;

BasicBlock *Function::createBlock(std::string Name) {
  Blocks.push_back(std::make_unique<BasicBlock>(this, std::move(Name)));
  Blocks.back()->setNumber(static_cast<unsigned>(Blocks.size()) - 1);
  return Blocks.back().get();
}

BasicBlock *Function::createBlockAfter(BasicBlock *After, std::string Name) {
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [&](const auto &B) { return B.get() == After; });
  assert(It != Blocks.end() && "anchor block not in this function");
  auto NewIt = Blocks.insert(
      ++It, std::make_unique<BasicBlock>(this, std::move(Name)));
  BasicBlock *NewBB = NewIt->get();
  renumberBlocks();
  return NewBB;
}

void Function::removeBlock(BasicBlock *BB) {
  assert(!Blocks.empty() && Blocks.front().get() != BB &&
         "cannot remove the entry block");
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [&](const auto &B) { return B.get() == BB; });
  assert(It != Blocks.end() && "block not in this function");
  Blocks.erase(It);
  renumberBlocks();
}

BasicBlock *Function::blockByName(const std::string &Name) const {
  for (const auto &B : Blocks)
    if (B->name() == Name)
      return B.get();
  return nullptr;
}

void Function::renumberBlocks() {
  for (unsigned I = 0; I < Blocks.size(); ++I)
    Blocks[I]->setNumber(I);
}

void Function::recomputePreds() {
  renumberBlocks();
  for (auto &B : Blocks)
    B->Preds.clear();
  for (auto &B : Blocks)
    for (BasicBlock *Succ : B->successors())
      Succ->Preds.push_back(B.get());
}
