//===- CFGUtils.cpp - CFG manipulation and traversal helpers --------------===//

#include "ir/CFGUtils.h"

#include <cassert>

using namespace simtsr;

std::string simtsr::uniqueBlockName(Function &F, const std::string &Prefix) {
  if (!F.blockByName(Prefix))
    return Prefix;
  for (unsigned I = 0;; ++I) {
    std::string Candidate = Prefix + "." + std::to_string(I);
    if (!F.blockByName(Candidate))
      return Candidate;
  }
}

BasicBlock *simtsr::splitEdge(Function &F, BasicBlock *From, BasicBlock *To) {
  assert(From->hasTerminator() && "source block lacks a terminator");
  BasicBlock *Mid = F.createBlockAfter(
      From, uniqueBlockName(F, From->name() + ".split"));
  Mid->append(Instruction(Opcode::Jmp, NoRegister, {Operand::block(To)}));
  bool Retargeted = false;
  Instruction &Term = From->terminator();
  for (unsigned I = 0; I < Term.numOperands(); ++I) {
    Operand &O = Term.operand(I);
    if (O.isBlock() && O.getBlock() == To) {
      O.setBlock(Mid);
      Retargeted = true;
    }
  }
  assert(Retargeted && "no edge From->To to split");
  (void)Retargeted;
  return Mid;
}

BasicBlock *simtsr::splitBlockAfter(Function &F, BasicBlock *BB,
                                    size_t Index) {
  assert(Index < BB->size() && "split index out of range");
  assert(!BB->inst(Index).isTerminator() &&
         "cannot split after the terminator");
  BasicBlock *Tail =
      F.createBlockAfter(BB, uniqueBlockName(F, BB->name() + ".cont"));
  auto &Insts = BB->instructions();
  auto First = Insts.begin() + static_cast<ptrdiff_t>(Index) + 1;
  Tail->instructions().assign(std::make_move_iterator(First),
                              std::make_move_iterator(Insts.end()));
  Insts.erase(First, Insts.end());
  Insts.push_back(Instruction(Opcode::Jmp, NoRegister,
                              {Operand::block(Tail)}));
  return Tail;
}

std::vector<BasicBlock *> simtsr::reversePostOrder(Function &F) {
  F.renumberBlocks();
  std::vector<bool> Visited(F.size(), false);
  std::vector<BasicBlock *> PostOrder;
  PostOrder.reserve(F.size());

  // Iterative DFS with an explicit stack of (block, next-successor-index).
  struct Frame {
    BasicBlock *BB;
    std::vector<BasicBlock *> Succs;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  if (!F.empty()) {
    Visited[F.entry()->number()] = true;
    Stack.push_back({F.entry(), F.entry()->successors()});
  }
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Next < Top.Succs.size()) {
      BasicBlock *Succ = Top.Succs[Top.Next++];
      if (!Visited[Succ->number()]) {
        Visited[Succ->number()] = true;
        Stack.push_back({Succ, Succ->successors()});
      }
      continue;
    }
    PostOrder.push_back(Top.BB);
    Stack.pop_back();
  }

  std::vector<BasicBlock *> RPO(PostOrder.rbegin(), PostOrder.rend());
  for (BasicBlock *BB : F)
    if (!Visited[BB->number()])
      RPO.push_back(BB);
  return RPO;
}

std::vector<bool> simtsr::blocksReaching(Function &F, BasicBlock *Target) {
  F.recomputePreds();
  std::vector<bool> Reaches(F.size(), false);
  std::vector<BasicBlock *> Worklist = {Target};
  Reaches[Target->number()] = true;
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    for (BasicBlock *Pred : BB->predecessors()) {
      if (Reaches[Pred->number()])
        continue;
      Reaches[Pred->number()] = true;
      Worklist.push_back(Pred);
    }
  }
  return Reaches;
}

std::vector<bool> simtsr::blocksReachableFrom(Function &F,
                                              BasicBlock *Source) {
  F.renumberBlocks();
  std::vector<bool> Reached(F.size(), false);
  std::vector<BasicBlock *> Worklist = {Source};
  Reached[Source->number()] = true;
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    for (BasicBlock *Succ : BB->successors()) {
      if (Reached[Succ->number()])
        continue;
      Reached[Succ->number()] = true;
      Worklist.push_back(Succ);
    }
  }
  return Reached;
}
