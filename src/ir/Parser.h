//===- Parser.h - Textual IR parsing ---------------------------*- C++ -*-===//
///
/// \file
/// Parses the `.sir` textual format produced by the printer. Parsing is
/// line-oriented; `;` starts a comment. Errors are reported with line
/// numbers rather than thrown.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_PARSER_H
#define SIMTSR_IR_PARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace simtsr {

struct ParseResult {
  std::unique_ptr<Module> M; ///< Null when Errors is non-empty.
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Parses \p Text into a module. On any error the module is dropped and all
/// collected diagnostics are returned.
ParseResult parseModule(const std::string &Text);

} // namespace simtsr

#endif // SIMTSR_IR_PARSER_H
