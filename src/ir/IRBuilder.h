//===- IRBuilder.h - Convenience IR construction ---------------*- C++ -*-===//
///
/// \file
/// Builder producing instructions at the end of a current block. Kernels and
/// tests construct IR through this interface; transforms mostly splice
/// instructions directly.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_IRBUILDER_H
#define SIMTSR_IR_IRBUILDER_H

#include "ir/Function.h"

namespace simtsr {

class IRBuilder {
public:
  explicit IRBuilder(Function *F) : F(F), BB(nullptr) {}
  IRBuilder(Function *F, BasicBlock *BB) : F(F), BB(BB) {}

  Function *function() const { return F; }
  BasicBlock *insertBlock() const { return BB; }
  void setInsertBlock(BasicBlock *B) { BB = B; }

  /// Creates a new block and makes it the insertion point.
  BasicBlock *startBlock(std::string Name) {
    BB = F->createBlock(std::move(Name));
    return BB;
  }

  // -- Value producers (return the destination register) -------------------

  unsigned binary(Opcode Op, Operand A, Operand B);
  unsigned add(Operand A, Operand B) { return binary(Opcode::Add, A, B); }
  unsigned sub(Operand A, Operand B) { return binary(Opcode::Sub, A, B); }
  unsigned mul(Operand A, Operand B) { return binary(Opcode::Mul, A, B); }
  unsigned div(Operand A, Operand B) { return binary(Opcode::Div, A, B); }
  unsigned rem(Operand A, Operand B) { return binary(Opcode::Rem, A, B); }
  unsigned andOp(Operand A, Operand B) { return binary(Opcode::And, A, B); }
  unsigned orOp(Operand A, Operand B) { return binary(Opcode::Or, A, B); }
  unsigned xorOp(Operand A, Operand B) { return binary(Opcode::Xor, A, B); }
  unsigned shl(Operand A, Operand B) { return binary(Opcode::Shl, A, B); }
  unsigned shr(Operand A, Operand B) { return binary(Opcode::Shr, A, B); }
  unsigned minOp(Operand A, Operand B) { return binary(Opcode::Min, A, B); }
  unsigned maxOp(Operand A, Operand B) { return binary(Opcode::Max, A, B); }
  unsigned cmpEQ(Operand A, Operand B) { return binary(Opcode::CmpEQ, A, B); }
  unsigned cmpNE(Operand A, Operand B) { return binary(Opcode::CmpNE, A, B); }
  unsigned cmpLT(Operand A, Operand B) { return binary(Opcode::CmpLT, A, B); }
  unsigned cmpLE(Operand A, Operand B) { return binary(Opcode::CmpLE, A, B); }
  unsigned cmpGT(Operand A, Operand B) { return binary(Opcode::CmpGT, A, B); }
  unsigned cmpGE(Operand A, Operand B) { return binary(Opcode::CmpGE, A, B); }

  unsigned unary(Opcode Op, Operand A);
  unsigned notOp(Operand A) { return unary(Opcode::Not, A); }
  unsigned neg(Operand A) { return unary(Opcode::Neg, A); }
  unsigned mov(Operand A) { return unary(Opcode::Mov, A); }

  unsigned select(Operand Cond, Operand A, Operand B);
  unsigned nullary(Opcode Op);
  unsigned tid() { return nullary(Opcode::Tid); }
  unsigned laneId() { return nullary(Opcode::LaneId); }
  unsigned warpSize() { return nullary(Opcode::WarpSize); }
  unsigned rand() { return nullary(Opcode::Rand); }
  unsigned randRange(Operand Lo, Operand Hi) {
    return binary(Opcode::RandRange, Lo, Hi);
  }

  unsigned load(Operand Addr) { return unary(Opcode::Load, Addr); }
  void store(Operand Addr, Operand Val);
  unsigned atomicAdd(Operand Addr, Operand Val) {
    return binary(Opcode::AtomicAdd, Addr, Val);
  }

  unsigned call(Function *Callee, std::vector<Operand> Args = {});

  // -- Terminators ----------------------------------------------------------

  void br(Operand Cond, BasicBlock *Then, BasicBlock *Else);
  void jmp(BasicBlock *Target);
  void ret();
  void ret(Operand Val);

  // -- Barriers and annotations --------------------------------------------

  void joinBarrier(unsigned B) { barrierOp(Opcode::JoinBarrier, B); }
  void waitBarrier(unsigned B) { barrierOp(Opcode::WaitBarrier, B); }
  void cancelBarrier(unsigned B) { barrierOp(Opcode::CancelBarrier, B); }
  void rejoinBarrier(unsigned B) { barrierOp(Opcode::RejoinBarrier, B); }
  void softWait(unsigned B, Operand Threshold);
  unsigned arrivedCount(unsigned B);
  void warpSync();
  void predict(BasicBlock *Label);
  void nop();

private:
  void barrierOp(Opcode Op, unsigned B);
  void emit(Opcode Op, unsigned Dst, std::vector<Operand> Ops);

  Function *F;
  BasicBlock *BB;
};

} // namespace simtsr

#endif // SIMTSR_IR_IRBUILDER_H
