//===- Printer.h - Textual IR output ---------------------------*- C++ -*-===//
///
/// \file
/// Prints modules, functions and instructions in the `.sir` textual format
/// accepted by the parser. print(parse(X)) is the identity on well-formed
/// input modulo whitespace.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_PRINTER_H
#define SIMTSR_IR_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace simtsr {

/// Renders one instruction (no trailing newline).
std::string printInstruction(const Instruction &I);

/// Renders a whole function including the header and block labels.
std::string printFunction(const Function &F);

/// Renders the module: memory directive followed by every function.
std::string printModule(const Module &M);

} // namespace simtsr

#endif // SIMTSR_IR_PRINTER_H
