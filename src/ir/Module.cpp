//===- Module.cpp - SIMT IR module ----------------------------------------===//

#include "ir/Module.h"

#include <unordered_map>

using namespace simtsr;

Function *Module::createFunction(std::string Name, unsigned NumParams) {
  Functions.push_back(
      std::make_unique<Function>(this, std::move(Name), NumParams));
  return Functions.back().get();
}

Function *Module::functionByName(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}

std::unique_ptr<Module> Module::clone() const {
  auto New = std::make_unique<Module>();
  New->GlobalMemoryWords = GlobalMemoryWords;

  // Pass 1: create every function and (empty) block first so that forward
  // references — calls to later functions, branches to later blocks — can
  // be remapped in a single second pass.
  std::unordered_map<const Function *, Function *> FuncMap;
  std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
  for (const auto &F : Functions) {
    Function *NF = New->createFunction(F->name(), F->numParams());
    NF->setReconvergeAtEntry(F->reconvergeAtEntry());
    if (F->numRegs() > 0)
      NF->reserveRegsThrough(F->numRegs() - 1);
    FuncMap[F.get()] = NF;
    for (const BasicBlock *BB : *F)
      BlockMap[BB] = NF->createBlock(BB->name());
  }

  // Pass 2: copy instructions, remapping block/function operands onto
  // their counterparts; register, immediate and barrier operands copy as-is.
  for (const auto &F : Functions) {
    for (const BasicBlock *BB : *F) {
      BasicBlock *NB = BlockMap.at(BB);
      for (const Instruction &I : BB->instructions()) {
        std::vector<Operand> Ops;
        Ops.reserve(I.numOperands());
        for (const Operand &O : I.operands()) {
          switch (O.kind()) {
          case Operand::Kind::Block:
            Ops.push_back(Operand::block(BlockMap.at(O.getBlock())));
            break;
          case Operand::Kind::Func:
            Ops.push_back(Operand::func(FuncMap.at(O.getFunc())));
            break;
          default:
            Ops.push_back(O);
            break;
          }
        }
        NB->append(Instruction(I.opcode(), I.hasDst() ? I.dst() : NoRegister,
                               std::move(Ops)));
      }
    }
  }

  for (const auto &F : Functions)
    FuncMap.at(F.get())->recomputePreds();
  return New;
}
