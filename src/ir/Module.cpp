//===- Module.cpp - SIMT IR module ----------------------------------------===//

#include "ir/Module.h"

using namespace simtsr;

Function *Module::createFunction(std::string Name, unsigned NumParams) {
  Functions.push_back(
      std::make_unique<Function>(this, std::move(Name), NumParams));
  return Functions.back().get();
}

Function *Module::functionByName(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}
