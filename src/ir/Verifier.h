//===- Verifier.h - IR well-formedness checks ------------------*- C++ -*-===//
///
/// \file
/// Structural verification of modules: block termination, operand kinds and
/// counts, register/barrier ranges, and cross-references (branch targets and
/// call targets). Returns diagnostics instead of aborting so tests can
/// assert on malformed IR.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_VERIFIER_H
#define SIMTSR_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace simtsr {

/// \returns diagnostics for every violation found in \p F; empty means the
/// function is well formed.
std::vector<std::string> verifyFunction(const Function &F);

/// Verifies every function plus module-level invariants (unique names).
std::vector<std::string> verifyModule(const Module &M);

/// Convenience wrapper: true when verifyModule reports nothing.
bool isWellFormed(const Module &M);

} // namespace simtsr

#endif // SIMTSR_IR_VERIFIER_H
