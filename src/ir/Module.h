//===- Module.h - SIMT IR module -------------------------------*- C++ -*-===//
///
/// \file
/// A module owns a set of functions plus launch-level configuration (global
/// memory size). The kernel — the function the simulator launches — is
/// chosen by name at launch time.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_MODULE_H
#define SIMTSR_IR_MODULE_H

#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace simtsr {

class Module {
public:
  /// Creates a function; \p Name must be unique (the verifier checks).
  Function *createFunction(std::string Name, unsigned NumParams);

  size_t size() const { return Functions.size(); }
  Function *function(size_t I) const {
    assert(I < Functions.size() && "function index out of range");
    return Functions[I].get();
  }
  /// \returns the function named \p Name, or nullptr.
  Function *functionByName(const std::string &Name) const;

  /// Deep copy: functions, blocks and instructions are duplicated and all
  /// block/function operands are remapped to their counterparts in the
  /// copy. Layout order, block numbering, register counts, annotations and
  /// the global-memory size are preserved, so printModule(*clone()) equals
  /// printModule(*this). Replaces the old print->parse round-trip cloning
  /// at a fraction of the cost.
  std::unique_ptr<Module> clone() const;

  auto begin() const { return Functions.begin(); }
  auto end() const { return Functions.end(); }

  /// Number of 64-bit words of global memory the launch provides.
  uint64_t globalMemoryWords() const { return GlobalMemoryWords; }
  void setGlobalMemoryWords(uint64_t W) { GlobalMemoryWords = W; }

private:
  std::vector<std::unique_ptr<Function>> Functions;
  uint64_t GlobalMemoryWords = 1 << 16;
};

} // namespace simtsr

#endif // SIMTSR_IR_MODULE_H
