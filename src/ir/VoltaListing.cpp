//===- VoltaListing.cpp - Table 1 lowering view --------------------------------===//

#include "ir/VoltaListing.h"

#include "ir/Printer.h"

using namespace simtsr;

std::string simtsr::printVoltaListing(const Function &F) {
  std::string Out = "// Volta lowering of @" + F.name() +
                    " (Table 1: BSSY/BSYNC/BREAK)\n";
  for (const BasicBlock *BB : F) {
    Out += BB->name() + ":\n";
    for (const Instruction &I : BB->instructions()) {
      std::string Line;
      switch (I.opcode()) {
      case Opcode::JoinBarrier:
        Line = "BSSY    B" + std::to_string(I.barrierId()) +
               "            // JoinBarrier";
        break;
      case Opcode::RejoinBarrier:
        Line = "BSSY    B" + std::to_string(I.barrierId()) +
               "            // RejoinBarrier";
        break;
      case Opcode::WaitBarrier:
        Line = "BSYNC   B" + std::to_string(I.barrierId()) +
               "            // WaitBarrier";
        break;
      case Opcode::CancelBarrier:
        Line = "BREAK   B" + std::to_string(I.barrierId()) +
               "            // CancelBarrier";
        break;
      case Opcode::SoftWait:
        Line = "BSYNC.SOFT B" + std::to_string(I.barrierId()) + ", " +
               printInstruction(I).substr(
                   printInstruction(I).rfind(", ") + 2) +
               "   // soft barrier (Figure 6)";
        break;
      default:
        Line = printInstruction(I);
        break;
      }
      Out += "  " + Line + "\n";
    }
  }
  return Out;
}
