//===- Operand.h - Instruction operands ------------------------*- C++ -*-===//
///
/// \file
/// An instruction operand is one of: a virtual register, a 64-bit immediate,
/// a basic-block reference (branch target or Predict label), a function
/// reference (call target), or a barrier register id.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_OPERAND_H
#define SIMTSR_IR_OPERAND_H

#include <cassert>
#include <cstdint>

namespace simtsr {

class BasicBlock;
class Function;

class Operand {
public:
  enum class Kind : uint8_t { Reg, Imm, Block, Func, Barrier };

  static Operand reg(unsigned R) {
    Operand O(Kind::Reg);
    O.Storage.Reg = R;
    return O;
  }
  static Operand imm(int64_t V) {
    Operand O(Kind::Imm);
    O.Storage.Imm = V;
    return O;
  }
  static Operand block(BasicBlock *B) {
    assert(B && "null block operand");
    Operand O(Kind::Block);
    O.Storage.Block = B;
    return O;
  }
  static Operand func(Function *F) {
    assert(F && "null function operand");
    Operand O(Kind::Func);
    O.Storage.Fn = F;
    return O;
  }
  static Operand barrier(unsigned B) {
    Operand O(Kind::Barrier);
    O.Storage.Barrier = B;
    return O;
  }

  Kind kind() const { return K; }
  bool isReg() const { return K == Kind::Reg; }
  bool isImm() const { return K == Kind::Imm; }
  bool isBlock() const { return K == Kind::Block; }
  bool isFunc() const { return K == Kind::Func; }
  bool isBarrier() const { return K == Kind::Barrier; }

  unsigned getReg() const {
    assert(isReg() && "not a register operand");
    return Storage.Reg;
  }
  int64_t getImm() const {
    assert(isImm() && "not an immediate operand");
    return Storage.Imm;
  }
  BasicBlock *getBlock() const {
    assert(isBlock() && "not a block operand");
    return Storage.Block;
  }
  Function *getFunc() const {
    assert(isFunc() && "not a function operand");
    return Storage.Fn;
  }
  unsigned getBarrier() const {
    assert(isBarrier() && "not a barrier operand");
    return Storage.Barrier;
  }

  /// Retargets a block operand; used by edge splitting.
  void setBlock(BasicBlock *B) {
    assert(isBlock() && B && "retarget requires a block operand");
    Storage.Block = B;
  }

  /// Renames a barrier operand; used by the barrier allocator.
  void setBarrier(unsigned B) {
    assert(isBarrier() && "not a barrier operand");
    Storage.Barrier = B;
  }

  friend bool operator==(const Operand &A, const Operand &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case Kind::Reg:
      return A.Storage.Reg == B.Storage.Reg;
    case Kind::Imm:
      return A.Storage.Imm == B.Storage.Imm;
    case Kind::Block:
      return A.Storage.Block == B.Storage.Block;
    case Kind::Func:
      return A.Storage.Fn == B.Storage.Fn;
    case Kind::Barrier:
      return A.Storage.Barrier == B.Storage.Barrier;
    }
    return false;
  }
  friend bool operator!=(const Operand &A, const Operand &B) {
    return !(A == B);
  }

private:
  explicit Operand(Kind K) : K(K) {}

  Kind K;
  union {
    unsigned Reg;
    int64_t Imm;
    BasicBlock *Block;
    Function *Fn;
    unsigned Barrier;
  } Storage;
};

} // namespace simtsr

#endif // SIMTSR_IR_OPERAND_H
