//===- Verifier.cpp - IR well-formedness checks ----------------------------===//

#include "ir/Verifier.h"

#include "ir/Printer.h"

#include <set>

using namespace simtsr;

namespace {

class FunctionVerifier {
public:
  explicit FunctionVerifier(const Function &F) : F(F) {}

  std::vector<std::string> run() {
    if (F.empty()) {
      error("function has no blocks");
      return Diags;
    }
    checkBlockNames();
    for (const BasicBlock *BB : F)
      checkBlock(*BB);
    return Diags;
  }

private:
  void error(const std::string &Msg) {
    Diags.push_back("@" + F.name() + ": " + Msg);
  }
  void error(const BasicBlock &BB, const Instruction &I,
             const std::string &Msg) {
    Diags.push_back("@" + F.name() + ":" + BB.name() + ": '" +
                    printInstruction(I) + "': " + Msg);
  }

  void checkBlockNames() {
    std::set<std::string> Names;
    for (const BasicBlock *BB : F)
      if (!Names.insert(BB->name()).second)
        error("duplicate block name '" + BB->name() + "'");
  }

  bool blockInFunction(const BasicBlock *Target) const {
    for (const BasicBlock *BB : F)
      if (BB == Target)
        return true;
    return false;
  }

  void checkBlock(const BasicBlock &BB) {
    if (BB.empty()) {
      error("block '" + BB.name() + "' is empty");
      return;
    }
    if (!BB.hasTerminator())
      error("block '" + BB.name() + "' does not end in a terminator");
    for (size_t I = 0; I < BB.size(); ++I) {
      const Instruction &Inst = BB.inst(I);
      if (Inst.isTerminator() && I + 1 != BB.size())
        error(BB, Inst, "terminator not at end of block");
      checkInstruction(BB, Inst);
    }
  }

  bool isValueOperand(const Operand &O) const { return O.isReg() || O.isImm(); }

  void checkValueOperand(const BasicBlock &BB, const Instruction &I,
                         const Operand &O) {
    if (!isValueOperand(O)) {
      error(BB, I, "expected register or immediate operand");
      return;
    }
    if (O.isReg() && O.getReg() >= F.numRegs())
      error(BB, I, "register out of range");
  }

  void checkBlockOperand(const BasicBlock &BB, const Instruction &I,
                         const Operand &O) {
    if (!O.isBlock()) {
      error(BB, I, "expected block operand");
      return;
    }
    if (!blockInFunction(O.getBlock()))
      error(BB, I, "block operand not in this function");
  }

  void checkBarrierOperand(const BasicBlock &BB, const Instruction &I,
                           const Operand &O) {
    if (!O.isBarrier()) {
      error(BB, I, "expected barrier operand");
      return;
    }
    if (O.getBarrier() >= NumBarrierRegisters)
      error(BB, I, "barrier register out of range");
  }

  void checkInstruction(const BasicBlock &BB, const Instruction &I) {
    const OpcodeInfo &Info = getOpcodeInfo(I.opcode());
    if (Info.HasDst != I.hasDst()) {
      error(BB, I, Info.HasDst ? "missing destination register"
                               : "unexpected destination register");
      return;
    }
    if (I.hasDst() && I.dst() >= F.numRegs())
      error(BB, I, "destination register out of range");
    if (Info.NumOperands >= 0 &&
        I.numOperands() != static_cast<unsigned>(Info.NumOperands)) {
      error(BB, I, "wrong operand count");
      return;
    }

    switch (I.opcode()) {
    case Opcode::Br:
      checkValueOperand(BB, I, I.operand(0));
      checkBlockOperand(BB, I, I.operand(1));
      checkBlockOperand(BB, I, I.operand(2));
      break;
    case Opcode::Jmp:
    case Opcode::Predict:
      checkBlockOperand(BB, I, I.operand(0));
      break;
    case Opcode::Ret:
      if (I.numOperands() > 1) {
        error(BB, I, "ret takes at most one operand");
        break;
      }
      if (I.numOperands() == 1)
        checkValueOperand(BB, I, I.operand(0));
      break;
    case Opcode::Call: {
      if (I.numOperands() < 1 || !I.operand(0).isFunc()) {
        error(BB, I, "call requires a function operand");
        break;
      }
      const Function *Callee = I.operand(0).getFunc();
      if (I.numOperands() - 1 != Callee->numParams())
        error(BB, I, "call arity mismatch");
      for (unsigned Idx = 1; Idx < I.numOperands(); ++Idx)
        checkValueOperand(BB, I, I.operand(Idx));
      if (F.parent() && Callee->parent() != F.parent())
        error(BB, I, "call target in a different module");
      break;
    }
    case Opcode::JoinBarrier:
    case Opcode::WaitBarrier:
    case Opcode::CancelBarrier:
    case Opcode::RejoinBarrier:
    case Opcode::ArrivedCount:
      checkBarrierOperand(BB, I, I.operand(0));
      break;
    case Opcode::SoftWait:
      checkBarrierOperand(BB, I, I.operand(0));
      checkValueOperand(BB, I, I.operand(1));
      break;
    default:
      for (unsigned Idx = 0; Idx < I.numOperands(); ++Idx)
        checkValueOperand(BB, I, I.operand(Idx));
      break;
    }
  }

  const Function &F;
  std::vector<std::string> Diags;
};

} // namespace

std::vector<std::string> simtsr::verifyFunction(const Function &F) {
  return FunctionVerifier(F).run();
}

std::vector<std::string> simtsr::verifyModule(const Module &M) {
  std::vector<std::string> Diags;
  std::set<std::string> Names;
  for (const auto &F : M)
    if (!Names.insert(F->name()).second)
      Diags.push_back("duplicate function name '@" + F->name() + "'");
  for (const auto &F : M) {
    auto FDiags = verifyFunction(*F);
    Diags.insert(Diags.end(), FDiags.begin(), FDiags.end());
  }
  return Diags;
}

bool simtsr::isWellFormed(const Module &M) { return verifyModule(M).empty(); }
