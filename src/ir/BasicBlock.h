//===- BasicBlock.h - SIMT IR basic block ----------------------*- C++ -*-===//
///
/// \file
/// A basic block: a named, ordered sequence of instructions ending in a
/// terminator. Successors derive from the terminator; predecessor lists are
/// maintained by Function::recomputePreds() and must be refreshed after any
/// CFG mutation (analyses call it on construction).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_BASICBLOCK_H
#define SIMTSR_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace simtsr {

class Function;

class BasicBlock {
public:
  BasicBlock(Function *Parent, std::string Name)
      : Parent(Parent), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  Function *parent() const { return Parent; }

  /// Position of this block within its function's block list; refreshed by
  /// Function::renumberBlocks(). Analyses index dense arrays with it.
  unsigned number() const { return Number; }
  void setNumber(unsigned N) { Number = N; }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }
  Instruction &inst(size_t I) {
    assert(I < Insts.size() && "instruction index out of range");
    return Insts[I];
  }
  const Instruction &inst(size_t I) const {
    assert(I < Insts.size() && "instruction index out of range");
    return Insts[I];
  }
  std::vector<Instruction> &instructions() { return Insts; }
  const std::vector<Instruction> &instructions() const { return Insts; }

  /// Appends \p I; asserts that no instruction follows a terminator.
  void append(Instruction I);

  /// Inserts \p I at position \p Index (0 = block entry).
  void insert(size_t Index, Instruction I);

  /// Inserts \p I immediately before the terminator; the block must already
  /// be terminated.
  void insertBeforeTerminator(Instruction I);

  /// Removes the instruction at position \p Index. Callers removing a
  /// terminator must re-terminate the block before the next CFG query.
  void erase(size_t Index);

  /// \returns true if the last instruction is a terminator.
  bool hasTerminator() const;

  /// \returns the terminator; the block must be terminated.
  const Instruction &terminator() const;
  Instruction &terminator();

  /// \returns successor blocks in terminator operand order (empty for Ret).
  std::vector<BasicBlock *> successors() const;

  /// Predecessors, valid after Function::recomputePreds().
  const std::vector<BasicBlock *> &predecessors() const { return Preds; }

  /// Index of the first instruction that is not a Predict annotation or a
  /// barrier op; insertion point for "top of block" code.
  size_t firstRealIndex() const;

private:
  friend class Function;

  Function *Parent;
  std::string Name;
  unsigned Number = 0;
  std::vector<Instruction> Insts;
  std::vector<BasicBlock *> Preds;
};

} // namespace simtsr

#endif // SIMTSR_IR_BASICBLOCK_H
