//===- IRBuilder.cpp - Convenience IR construction -------------------------===//

#include "ir/IRBuilder.h"

using namespace simtsr;

void IRBuilder::emit(Opcode Op, unsigned Dst, std::vector<Operand> Ops) {
  assert(BB && "no insertion block set");
  BB->append(Instruction(Op, Dst, std::move(Ops)));
}

unsigned IRBuilder::binary(Opcode Op, Operand A, Operand B) {
  unsigned Dst = F->createReg();
  emit(Op, Dst, {A, B});
  return Dst;
}

unsigned IRBuilder::unary(Opcode Op, Operand A) {
  unsigned Dst = F->createReg();
  emit(Op, Dst, {A});
  return Dst;
}

unsigned IRBuilder::select(Operand Cond, Operand A, Operand B) {
  unsigned Dst = F->createReg();
  emit(Opcode::Select, Dst, {Cond, A, B});
  return Dst;
}

unsigned IRBuilder::nullary(Opcode Op) {
  unsigned Dst = F->createReg();
  emit(Op, Dst, {});
  return Dst;
}

void IRBuilder::store(Operand Addr, Operand Val) {
  emit(Opcode::Store, NoRegister, {Addr, Val});
}

unsigned IRBuilder::call(Function *Callee, std::vector<Operand> Args) {
  assert(Callee->numParams() == Args.size() && "call arity mismatch");
  unsigned Dst = F->createReg();
  std::vector<Operand> Ops;
  Ops.push_back(Operand::func(Callee));
  for (const Operand &A : Args)
    Ops.push_back(A);
  emit(Opcode::Call, Dst, std::move(Ops));
  return Dst;
}

void IRBuilder::br(Operand Cond, BasicBlock *Then, BasicBlock *Else) {
  emit(Opcode::Br, NoRegister,
       {Cond, Operand::block(Then), Operand::block(Else)});
}

void IRBuilder::jmp(BasicBlock *Target) {
  emit(Opcode::Jmp, NoRegister, {Operand::block(Target)});
}

void IRBuilder::ret() { emit(Opcode::Ret, NoRegister, {}); }

void IRBuilder::ret(Operand Val) { emit(Opcode::Ret, NoRegister, {Val}); }

void IRBuilder::barrierOp(Opcode Op, unsigned B) {
  assert(B < NumBarrierRegisters && "barrier register out of range");
  emit(Op, NoRegister, {Operand::barrier(B)});
}

void IRBuilder::softWait(unsigned B, Operand Threshold) {
  assert(B < NumBarrierRegisters && "barrier register out of range");
  emit(Opcode::SoftWait, NoRegister, {Operand::barrier(B), Threshold});
}

unsigned IRBuilder::arrivedCount(unsigned B) {
  assert(B < NumBarrierRegisters && "barrier register out of range");
  unsigned Dst = F->createReg();
  emit(Opcode::ArrivedCount, Dst, {Operand::barrier(B)});
  return Dst;
}

void IRBuilder::warpSync() { emit(Opcode::WarpSync, NoRegister, {}); }

void IRBuilder::predict(BasicBlock *Label) {
  emit(Opcode::Predict, NoRegister, {Operand::block(Label)});
}

void IRBuilder::nop() { emit(Opcode::Nop, NoRegister, {}); }
