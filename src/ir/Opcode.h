//===- Opcode.h - SIMT IR opcode definitions -------------------*- C++ -*-===//
///
/// \file
/// Opcodes of the simtsr IR: a small register machine rich enough to express
/// the divergent Monte Carlo kernels from the paper plus the convergence-
/// barrier primitives of Section 4 (Table 1) and the soft barrier of
/// Section 4.6. All values are 64-bit signed integers.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_OPCODE_H
#define SIMTSR_IR_OPCODE_H

#include <cstdint>

namespace simtsr {

enum class Opcode : uint8_t {
  // Binary arithmetic / logic: dst = a <op> b.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Min,
  Max,
  // Unary: dst = <op> a.
  Not,
  Neg,
  Mov,
  // Comparisons (signed): dst = a <cmp> b ? 1 : 0.
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  // dst = cond ? a : b.
  Select,
  // SIMT specials (no operands, produce a value).
  Tid,     ///< Global thread id within the launch.
  LaneId,  ///< Lane within the warp (tid % warpSize).
  WarpSize,
  // Per-thread deterministic random stream.
  Rand,      ///< dst = next raw 64-bit random value (non-negative).
  RandRange, ///< dst = random in [a, b); a and b must satisfy a < b.
  // Memory (global, shared across the warp).
  Load,      ///< dst = mem[addr].
  Store,     ///< mem[addr] = val.
  AtomicAdd, ///< dst = old mem[addr]; mem[addr] += val. Single-warp atomic.
  // Control flow (terminators except Call).
  Br,   ///< br cond, thenBlock, elseBlock.
  Jmp,  ///< jmp target.
  Ret,  ///< ret [val].
  Call, ///< [dst =] call @f(args...).
  // Convergence-barrier primitives (Table 1). The operand names a barrier.
  JoinBarrier,   ///< Enter the barrier; expect to wait at a later point.
  WaitBarrier,   ///< Block until all participants arrive; clears membership.
  CancelBarrier, ///< Withdraw from the barrier without waiting.
  RejoinBarrier, ///< Re-enter a barrier previously cleared by a wait.
  SoftWait,      ///< softwait barrier, threshold: release once
                 ///< |waiting| >= min(threshold, |participants|).
  ArrivedCount,  ///< dst = number of threads currently waiting on barrier.
  WarpSync,      ///< Full-warp execution barrier (all live threads).
  // Annotations.
  Predict, ///< predict label: marks a prediction-region start (Section 4.1).
  Nop,
};

/// Static properties of an opcode.
struct OpcodeInfo {
  const char *Name;    ///< Mnemonic used by the printer/parser.
  bool HasDst;         ///< Defines a destination register.
  int8_t NumOperands;  ///< Fixed operand count, or -1 for variadic (Call/Ret).
  bool IsTerminator;   ///< Must appear last in a basic block.
};

/// \returns the static properties of \p Op.
const OpcodeInfo &getOpcodeInfo(Opcode Op);

/// \returns the mnemonic for \p Op (e.g. "add").
const char *getOpcodeName(Opcode Op);

/// \returns true for the barrier-manipulating opcodes whose first operand
/// names a barrier (Join/Wait/Cancel/Rejoin/SoftWait/ArrivedCount).
bool isBarrierOp(Opcode Op);

/// \returns true for binary arithmetic/logic/compare opcodes.
bool isBinaryOp(Opcode Op);

/// \returns true for comparison opcodes.
bool isCompareOp(Opcode Op);

/// Total number of opcodes; useful for tables indexed by opcode.
constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Nop) + 1;

/// Number of architectural barrier registers (Volta exposes 16).
constexpr unsigned NumBarrierRegisters = 16;

} // namespace simtsr

#endif // SIMTSR_IR_OPCODE_H
