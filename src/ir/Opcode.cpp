//===- Opcode.cpp - SIMT IR opcode definitions ----------------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace simtsr;

static const OpcodeInfo InfoTable[NumOpcodes] = {
    // Name, HasDst, NumOperands, IsTerminator
    {"add", true, 2, false},
    {"sub", true, 2, false},
    {"mul", true, 2, false},
    {"div", true, 2, false},
    {"rem", true, 2, false},
    {"and", true, 2, false},
    {"or", true, 2, false},
    {"xor", true, 2, false},
    {"shl", true, 2, false},
    {"shr", true, 2, false},
    {"min", true, 2, false},
    {"max", true, 2, false},
    {"not", true, 1, false},
    {"neg", true, 1, false},
    {"mov", true, 1, false},
    {"cmpeq", true, 2, false},
    {"cmpne", true, 2, false},
    {"cmplt", true, 2, false},
    {"cmple", true, 2, false},
    {"cmpgt", true, 2, false},
    {"cmpge", true, 2, false},
    {"select", true, 3, false},
    {"tid", true, 0, false},
    {"laneid", true, 0, false},
    {"warpsize", true, 0, false},
    {"rand", true, 0, false},
    {"randrange", true, 2, false},
    {"load", true, 1, false},
    {"store", false, 2, false},
    {"atomicadd", true, 2, false},
    {"br", false, 3, true},
    {"jmp", false, 1, true},
    {"ret", false, -1, true},
    {"call", true, -1, false},
    {"joinbar", false, 1, false},
    {"waitbar", false, 1, false},
    {"cancelbar", false, 1, false},
    {"rejoinbar", false, 1, false},
    {"softwait", false, 2, false},
    {"arrived", true, 1, false},
    {"warpsync", false, 0, false},
    {"predict", false, 1, false},
    {"nop", false, 0, false},
};

const OpcodeInfo &simtsr::getOpcodeInfo(Opcode Op) {
  assert(static_cast<unsigned>(Op) < NumOpcodes && "opcode out of range");
  return InfoTable[static_cast<unsigned>(Op)];
}

const char *simtsr::getOpcodeName(Opcode Op) { return getOpcodeInfo(Op).Name; }

bool simtsr::isBarrierOp(Opcode Op) {
  switch (Op) {
  case Opcode::JoinBarrier:
  case Opcode::WaitBarrier:
  case Opcode::CancelBarrier:
  case Opcode::RejoinBarrier:
  case Opcode::SoftWait:
  case Opcode::ArrivedCount:
    return true;
  default:
    return false;
  }
}

bool simtsr::isBinaryOp(Opcode Op) {
  return (Op >= Opcode::Add && Op <= Opcode::Max) || isCompareOp(Op);
}

bool simtsr::isCompareOp(Opcode Op) {
  return Op >= Opcode::CmpEQ && Op <= Opcode::CmpGE;
}
