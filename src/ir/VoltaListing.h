//===- VoltaListing.h - Table 1 lowering view ------------------*- C++ -*-===//
///
/// \file
/// Renders a function the way the paper's Table 1 lowers it: the
/// convergence-barrier primitives appear as their Volta ISA equivalents
/// (`JoinBarrier`/`RejoinBarrier` -> BSSY, `WaitBarrier` -> BSYNC,
/// `CancelBarrier` -> BREAK), each carrying its barrier register as `Bn`.
/// The soft wait has no single-instruction Volta equivalent (Figure 6
/// builds it from the same three); it prints as `BSYNC.SOFT Bn, t` with a
/// comment. Purely a presentation layer — the listing is not parseable.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_IR_VOLTALISTING_H
#define SIMTSR_IR_VOLTALISTING_H

#include "ir/Function.h"

#include <string>

namespace simtsr {

/// Renders \p F as an annotated Volta-flavoured listing.
std::string printVoltaListing(const Function &F);

} // namespace simtsr

#endif // SIMTSR_IR_VOLTALISTING_H
