//===- Printer.cpp - Textual IR output -------------------------------------===//

#include "ir/Printer.h"

using namespace simtsr;

static void printOperand(std::string &Out, const Operand &O) {
  switch (O.kind()) {
  case Operand::Kind::Reg:
    Out += "%" + std::to_string(O.getReg());
    return;
  case Operand::Kind::Imm:
    Out += std::to_string(O.getImm());
    return;
  case Operand::Kind::Block:
    Out += O.getBlock()->name();
    return;
  case Operand::Kind::Func:
    Out += "@" + O.getFunc()->name();
    return;
  case Operand::Kind::Barrier:
    Out += "b" + std::to_string(O.getBarrier());
    return;
  }
}

std::string simtsr::printInstruction(const Instruction &I) {
  std::string Out;
  if (I.hasDst())
    Out += "%" + std::to_string(I.dst()) + " = ";
  Out += getOpcodeName(I.opcode());
  for (unsigned Idx = 0; Idx < I.numOperands(); ++Idx) {
    Out += Idx == 0 ? " " : ", ";
    printOperand(Out, I.operand(Idx));
  }
  return Out;
}

std::string simtsr::printFunction(const Function &F) {
  std::string Out = "func @" + F.name() + "(" +
                    std::to_string(F.numParams()) + ")";
  if (F.reconvergeAtEntry())
    Out += " reconverge_entry";
  Out += " {\n";
  for (const BasicBlock *BB : F) {
    Out += BB->name() + ":\n";
    for (const Instruction &I : BB->instructions())
      Out += "  " + printInstruction(I) + "\n";
  }
  Out += "}\n";
  return Out;
}

std::string simtsr::printModule(const Module &M) {
  std::string Out =
      "memory " + std::to_string(M.globalMemoryWords()) + "\n";
  for (const auto &F : M) {
    Out += "\n";
    Out += printFunction(*F);
  }
  return Out;
}
