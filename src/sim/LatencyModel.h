//===- LatencyModel.h - Per-opcode issue costs -----------------*- C++ -*-===//
///
/// \file
/// Issue-slot costs per opcode. The simulator's cycle count is the sum of
/// the latencies of every issued instruction group; SIMT efficiency weights
/// active threads by the same latencies, so "expensive" regions dominate
/// the metric exactly as long-latency instructions dominate real kernels.
///
/// Three presets bracket the paper's workloads: computeBound (RSBench-like,
/// arithmetic dominates), memoryBound (XSBench-like, loads dominate), and
/// unit (every opcode costs 1 — used by tests that count issue slots).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SIM_LATENCYMODEL_H
#define SIMTSR_SIM_LATENCYMODEL_H

#include "ir/Opcode.h"

#include <array>
#include <cstdint>

namespace simtsr {

struct LatencyModel {
  std::array<uint32_t, NumOpcodes> Cost;

  uint32_t cost(Opcode Op) const {
    return Cost[static_cast<unsigned>(Op)];
  }
  void setCost(Opcode Op, uint32_t C) {
    Cost[static_cast<unsigned>(Op)] = C;
  }

  /// Every opcode costs one cycle; convenient for issue-slot counting.
  static LatencyModel unit();

  /// ALU-dominated kernel: cheap arithmetic, moderate memory.
  static LatencyModel computeBound();

  /// Memory-dominated kernel: loads are an order of magnitude above ALU.
  static LatencyModel memoryBound();
};

} // namespace simtsr

#endif // SIMTSR_SIM_LATENCYMODEL_H
