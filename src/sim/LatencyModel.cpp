//===- LatencyModel.cpp - Per-opcode issue costs ------------------------------===//

#include "sim/LatencyModel.h"

using namespace simtsr;

LatencyModel LatencyModel::unit() {
  LatencyModel M;
  M.Cost.fill(1);
  return M;
}

LatencyModel LatencyModel::computeBound() {
  LatencyModel M;
  M.Cost.fill(1);
  M.setCost(Opcode::Mul, 3);
  M.setCost(Opcode::Div, 16);
  M.setCost(Opcode::Rem, 16);
  M.setCost(Opcode::Select, 2);
  M.setCost(Opcode::Rand, 6);
  M.setCost(Opcode::RandRange, 8);
  M.setCost(Opcode::Load, 30);
  M.setCost(Opcode::Store, 15);
  M.setCost(Opcode::AtomicAdd, 40);
  M.setCost(Opcode::Call, 4);
  M.setCost(Opcode::Ret, 2);
  M.setCost(Opcode::Br, 2);
  M.setCost(Opcode::Jmp, 1);
  M.setCost(Opcode::JoinBarrier, 2);
  M.setCost(Opcode::WaitBarrier, 2);
  M.setCost(Opcode::CancelBarrier, 2);
  M.setCost(Opcode::RejoinBarrier, 2);
  M.setCost(Opcode::SoftWait, 2);
  M.setCost(Opcode::ArrivedCount, 2);
  M.setCost(Opcode::WarpSync, 2);
  M.setCost(Opcode::Predict, 0);
  M.setCost(Opcode::Nop, 1);
  return M;
}

LatencyModel LatencyModel::memoryBound() {
  LatencyModel M = computeBound();
  M.setCost(Opcode::Load, 200);
  M.setCost(Opcode::Store, 60);
  M.setCost(Opcode::AtomicAdd, 150);
  return M;
}
