//===- Warp.cpp - SIMT warp interpreter ---------------------------------------===//

#include "sim/Warp.h"

#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Hash.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <limits>

using namespace simtsr;

LaunchVerification simtsr::verifyLaunchModule(const Module &M) {
  // Structural IR validation: rejecting out-of-range registers, barrier
  // ids, unterminated blocks and bad operand kinds up front keeps the
  // per-instruction interpreter checks cheap and makes release builds as
  // safe as asserting ones.
  LaunchVerification V;
  V.M = &M;
  std::vector<std::string> Diags = verifyModule(M);
  constexpr size_t MaxReported = 3;
  for (size_t I = 0; I < Diags.size() && I < MaxReported; ++I)
    V.Errors.push_back("invalid IR: " + Diags[I]);
  if (Diags.size() > MaxReported)
    V.Errors.push_back("invalid IR: (+" +
                       std::to_string(Diags.size() - MaxReported) +
                       " more diagnostics)");
  return V;
}

const char *simtsr::getRunStatusName(RunResult::Status S) {
  switch (S) {
  case RunResult::Status::Finished:
    return "finished";
  case RunResult::Status::Deadlock:
    return "deadlock";
  case RunResult::Status::Trap:
    return "trap";
  case RunResult::Status::IssueLimit:
    return "issue-limit";
  case RunResult::Status::Timeout:
    return "timeout";
  case RunResult::Status::Malformed:
    return "malformed";
  case RunResult::Status::ProgressLivelock:
    return "progress-livelock";
  }
  return "unknown";
}

const char *simtsr::getProgressModelName(ProgressModel M) {
  switch (M) {
  case ProgressModel::Fair:
    return "fair";
  case ProgressModel::HSA:
    return "hsa";
  case ProgressModel::OBE:
    return "obe";
  case ProgressModel::Bounded:
    return "bounded";
  }
  return "unknown";
}

std::string simtsr::formatProgressSpec(const ProgressSpec &S) {
  switch (S.Model) {
  case ProgressModel::Fair:
  case ProgressModel::HSA:
    return getProgressModelName(S.Model);
  case ProgressModel::OBE:
    return S.Param == 0 ? "obe" : "obe:" + std::to_string(S.Param);
  case ProgressModel::Bounded:
    return "bounded:" + std::to_string(S.Param == 0 ? 4u : S.Param);
  }
  return "unknown";
}

bool simtsr::parseProgressSpec(const std::string &Name, ProgressSpec &Out) {
  std::string Base = Name;
  unsigned Param = 0;
  const size_t Colon = Name.find(':');
  if (Colon != std::string::npos) {
    Base = Name.substr(0, Colon);
    const std::string Tail = Name.substr(Colon + 1);
    if (Tail.empty() || Tail.size() > 9 ||
        Tail.find_first_not_of("0123456789") != std::string::npos)
      return false;
    Param = static_cast<unsigned>(std::stoul(Tail));
    if (Param == 0)
      return false;
  }
  ProgressSpec S;
  if (Base == "fair")
    S.Model = ProgressModel::Fair;
  else if (Base == "hsa")
    S.Model = ProgressModel::HSA;
  else if (Base == "obe")
    S.Model = ProgressModel::OBE;
  else if (Base == "bounded")
    S.Model = ProgressModel::Bounded;
  else
    return false;
  // Only the parameterized models take a parameter.
  if (Param != 0 &&
      (S.Model == ProgressModel::Fair || S.Model == ProgressModel::HSA))
    return false;
  S.Param = Param;
  Out = S;
  return true;
}

WarpSimulator::WarpSimulator(const Module &M, const Function *Kernel,
                             LaunchConfig Config)
    : M(M), Kernel(Kernel), Config(std::move(Config)) {
  LaunchConfig &Cfg = this->Config;
  Tracing = Cfg.Trace != nullptr || Cfg.CollectTraceDigest;
  if (Cfg.WarpSize < 1 || Cfg.WarpSize > 64) {
    PrelaunchErrors.push_back("warp size " + std::to_string(Cfg.WarpSize) +
                              " outside [1, 64]");
    Cfg.WarpSize = std::clamp(Cfg.WarpSize, 1u, 64u);
  }
  GlobalMemory.assign(M.globalMemoryWords(), 0);
  Stats.WarpSize = Cfg.WarpSize;

  // Deterministic function ordinals: rank in name order, so scheduler
  // tie-breaks match the historical F->name() comparisons exactly.
  FuncsByOrder.reserve(M.size());
  for (const auto &F : M)
    FuncsByOrder.push_back(F.get());
  std::stable_sort(
      FuncsByOrder.begin(), FuncsByOrder.end(),
      [](const Function *A, const Function *B) { return A->name() < B->name(); });
  for (unsigned I = 0; I < FuncsByOrder.size(); ++I)
    FuncOrder[FuncsByOrder[I]] = I;
  if (Cfg.ProfileBlocks) {
    ProfileBase.resize(FuncsByOrder.size());
    unsigned Total = 0;
    for (unsigned I = 0; I < FuncsByOrder.size(); ++I) {
      ProfileBase[I] = Total;
      Total += static_cast<unsigned>(FuncsByOrder[I]->size());
    }
    BlockProf.resize(Total);
    BranchProf.resize(Total);
  }

  if (!Kernel) {
    PrelaunchErrors.push_back("no kernel function selected");
    return;
  }
  if (Kernel->parent() != &M) {
    PrelaunchErrors.push_back("kernel '@" + Kernel->name() +
                              "' does not belong to the launched module");
    return;
  }
  if (Kernel->empty()) {
    PrelaunchErrors.push_back("kernel '@" + Kernel->name() +
                              "' has no blocks");
    return;
  }
  if (Cfg.KernelArgs.size() != Kernel->numParams()) {
    PrelaunchErrors.push_back(
        "kernel '@" + Kernel->name() + "' takes " +
        std::to_string(Kernel->numParams()) + " parameter(s) but " +
        std::to_string(Cfg.KernelArgs.size()) + " argument(s) were provided");
    return;
  }

  Threads.resize(Cfg.WarpSize);
  ReadyGroups.reserve(Cfg.WarpSize);
  LiveThreads = Cfg.WarpSize;
  DirtyLanes = Cfg.WarpSize >= 64 ? ~0ull : ((1ull << Cfg.WarpSize) - 1);
  const unsigned KernelOrd = funcOrder(Kernel);
  for (unsigned Lane = 0; Lane < Cfg.WarpSize; ++Lane) {
    Thread &T = Threads[Lane];
    uint64_t SeedState = Cfg.Seed;
    // Derive an independent stream per lane.
    uint64_t LaneSeed = splitMix64(SeedState) ^ (0x9e37ull * (Lane + 1));
    T.Rand.seed(LaneSeed);
    Frame F;
    F.F = Kernel;
    F.FOrd = KernelOrd;
    F.Block = Kernel->entry()->number();
    F.Index = 0;
    F.RetDst = NoRegister;
    F.Regs.assign(Kernel->numRegs(), 0);
    for (size_t A = 0; A < Cfg.KernelArgs.size(); ++A)
      F.Regs[A] = Cfg.KernelArgs[A];
    T.Stack.push_back(std::move(F));
  }
}

unsigned WarpSimulator::funcOrder(const Function *F) const {
  auto It = FuncOrder.find(F);
  return It == FuncOrder.end() ? 0 : It->second;
}

bool WarpSimulator::setMemory(uint64_t Addr, int64_t Value) {
  if (Addr >= GlobalMemory.size()) {
    PrelaunchErrors.push_back(
        "setMemory address " + std::to_string(Addr) +
        " out of bounds (global memory has " +
        std::to_string(GlobalMemory.size()) + " words)");
    return false;
  }
  GlobalMemory[Addr] = Value;
  return true;
}

bool WarpSimulator::validateLaunch(std::vector<std::string> &Errors) const {
  // Reuse a shared verification when the launch provides one (runGrid and
  // the oracle verify once per module); otherwise verify here.
  if (Config.Verified && Config.Verified->M == &M) {
    Errors.insert(Errors.end(), Config.Verified->Errors.begin(),
                  Config.Verified->Errors.end());
    return Errors.empty();
  }
  LaunchVerification V = verifyLaunchModule(M);
  Errors.insert(Errors.end(), V.Errors.begin(), V.Errors.end());
  return Errors.empty();
}

uint64_t WarpSimulator::memoryChecksum() const {
  uint64_t Hash = FnvBasis;
  for (int64_t Word : GlobalMemory)
    Hash = fnv1aMixWord(Hash, static_cast<uint64_t>(Word));
  return Hash;
}

WarpSimulator::Pc WarpSimulator::pcOf(const Thread &T) const {
  const Frame &F = T.Stack.back();
  return {F.F, F.FOrd, F.Block, F.Index};
}

int64_t WarpSimulator::eval(const Thread &T, const Operand &O) {
  if (O.isImm())
    return O.getImm();
  if (!O.isReg()) {
    trap("malformed operand: expected a register or immediate");
    return 0;
  }
  const Frame &F = T.Stack.back();
  if (O.getReg() >= F.Regs.size()) {
    trap("register r" + std::to_string(O.getReg()) +
         " out of range in @" + F.F->name());
    return 0;
  }
  return F.Regs[O.getReg()];
}

void WarpSimulator::writeReg(Thread &T, unsigned Reg, int64_t V) {
  Frame &F = T.Stack.back();
  if (Reg >= F.Regs.size()) {
    trap("register r" + std::to_string(Reg) + " out of range in @" +
         F.F->name());
    return;
  }
  F.Regs[Reg] = V;
}

void WarpSimulator::trap(std::string Message) {
  Trapped = true;
  Result.St = RunResult::Status::Trap;
  Result.TrapMessage = std::move(Message);
}

void WarpSimulator::jumpTo(Thread &T, const BasicBlock *Target) {
  Frame &F = T.Stack.back();
  F.Block = Target->number();
  F.Index = 0;
}

void WarpSimulator::releaseLanes(LaneMask Lanes) {
  while (Lanes) {
    unsigned Lane = static_cast<unsigned>(std::countr_zero(Lanes));
    Lanes &= Lanes - 1;
    Thread &T = Threads[Lane];
    if (T.Status == ThreadStatus::Waiting) {
      T.Status = ThreadStatus::Ready;
      T.WaitingOn = WaitingOnNothing;
      DirtyLanes |= 1ull << Lane;
    }
  }
}

LaneMask WarpSimulator::checkWarpSyncRelease() {
  LaneMask Live = 0, Arrived = 0;
  for (unsigned Lane = 0; Lane < Config.WarpSize; ++Lane) {
    const Thread &T = Threads[Lane];
    if (T.Status == ThreadStatus::Exited)
      continue;
    Live |= 1ull << Lane;
    if (T.WaitingOn == WaitingOnWarpSync)
      Arrived |= 1ull << Lane;
  }
  if (Live != 0 && Live == Arrived) {
    releaseLanes(Arrived);
    return Arrived;
  }
  return 0;
}

void WarpSimulator::traceEvent(observe::TraceEvent E) {
  E.Slot = Stats.IssueSlots;
  E.Cycle = Stats.Cycles;
  if (Config.Trace)
    Config.Trace->onEvent(E);
  if (Config.CollectTraceDigest)
    Digest.onEvent(E);
}

void WarpSimulator::traceBarrier(observe::TraceEventKind Kind,
                                 unsigned BarrierId, LaneMask Lanes,
                                 LaneMask Released) {
  if (!Tracing)
    return;
  observe::TraceEvent E;
  E.Kind = Kind;
  E.BarrierId = static_cast<uint8_t>(BarrierId);
  E.Lanes = Lanes;
  E.Released = Released;
  traceEvent(E);
}

std::string WarpSimulator::describeBlockedThreads() const {
  unsigned Waiting = 0, Exited = 0;
  LaneMask SyncWaiters = 0;
  for (unsigned Lane = 0; Lane < Config.WarpSize; ++Lane) {
    const Thread &T = Threads[Lane];
    if (T.Status == ThreadStatus::Exited)
      ++Exited;
    else if (T.Status == ThreadStatus::Waiting) {
      ++Waiting;
      if (T.WaitingOn == WaitingOnWarpSync)
        SyncWaiters |= 1ull << Lane;
    }
  }
  std::string S = std::to_string(Waiting) + " thread(s) blocked, " +
                  std::to_string(Exited) + " exited; " +
                  Barriers.describeState();
  if (SyncWaiters) {
    char Buf[19];
    std::snprintf(Buf, sizeof(Buf), "0x%llx",
                  static_cast<unsigned long long>(SyncWaiters));
    S += std::string("; warpsync waiters=") + Buf;
  }
  return S;
}

void WarpSimulator::exitThread(unsigned Lane) {
  Threads[Lane].Status = ThreadStatus::Exited;
  Threads[Lane].Stack.clear();
  DirtyLanes |= 1ull << Lane;
  --LiveThreads;
  // OBE residency: a finished resident frees its slot and the lowest-id
  // lane that never became resident is admitted (deterministic FIFO-by-id
  // admission — the weakest order an occupancy-bound scheduler may use).
  if (Config.Progress.Model == ProgressModel::OBE &&
      (Resident & (1ull << Lane))) {
    Resident &= ~(1ull << Lane);
    for (unsigned L = 0; L < Config.WarpSize; ++L) {
      if ((Resident & (1ull << L)) ||
          Threads[L].Status == ThreadStatus::Exited)
        continue;
      Resident |= 1ull << L;
      break;
    }
  }
  LaneMask Released = Barriers.threadExit(1ull << Lane);
  releaseLanes(Released);
  Released |= checkWarpSyncRelease();
  traceBarrier(observe::TraceEventKind::LanesExited, 0, 1ull << Lane,
               Released);
}

bool WarpSimulator::execute(const Instruction &I, LaneMask Lanes) {
  auto forEachLane = [&](auto &&Fn) {
    LaneMask Remaining = Lanes;
    while (Remaining) {
      unsigned Lane = static_cast<unsigned>(std::countr_zero(Remaining));
      Remaining &= Remaining - 1;
      Fn(Lane, Threads[Lane]);
    }
  };

  const Opcode Op = I.opcode();

  // A rejected barrier operation (out-of-range id, classic/soft mixing)
  // becomes a trap instead of undefined behaviour.
  auto barrierUnitOk = [&]() -> bool {
    if (!Barriers.hasError())
      return true;
    trap("barrier misuse: " + Barriers.takeError() + " in " +
         printInstruction(I));
    return false;
  };

  // Barrier operations act on the whole group at once.
  if (Op == Opcode::JoinBarrier || Op == Opcode::RejoinBarrier) {
    forEachLane([&](unsigned, Thread &T) { advance(T); });
    const LaneMask Released = Barriers.join(I.barrierId(), Lanes);
    releaseLanes(Released);
    traceBarrier(Op == Opcode::JoinBarrier
                     ? observe::TraceEventKind::BarrierJoin
                     : observe::TraceEventKind::BarrierRejoin,
                 I.barrierId(), Lanes, Released);
    return barrierUnitOk();
  }
  if (Op == Opcode::CancelBarrier) {
    forEachLane([&](unsigned, Thread &T) { advance(T); });
    const LaneMask Released = Barriers.cancel(I.barrierId(), Lanes);
    releaseLanes(Released);
    traceBarrier(observe::TraceEventKind::BarrierCancel, I.barrierId(), Lanes,
                 Released);
    return barrierUnitOk();
  }
  if (Op == Opcode::WaitBarrier || Op == Opcode::SoftWait ||
      Op == Opcode::WarpSync) {
    ++Stats.BarrierWaits;
    // Advance PCs first so released threads resume after the wait.
    const int Reason = Op == Opcode::WarpSync
                           ? WaitingOnWarpSync
                           : static_cast<int>(I.barrierId());
    forEachLane([&](unsigned, Thread &T) {
      advance(T);
      T.Status = ThreadStatus::Waiting;
      T.WaitingOn = Reason;
    });
    if (Op == Opcode::WaitBarrier) {
      const LaneMask Released = Barriers.arriveWait(I.barrierId(), Lanes);
      releaseLanes(Released);
      traceBarrier(observe::TraceEventKind::BarrierWait, I.barrierId(), Lanes,
                   Released);
      return barrierUnitOk();
    }
    if (Op == Opcode::SoftWait) {
      // The threshold must be warp-uniform; the first lane's value decides.
      unsigned FirstLane = static_cast<unsigned>(std::countr_zero(Lanes));
      int64_t Threshold = eval(Threads[FirstLane], I.operand(1));
      if (Threshold < 0) {
        trap("softwait threshold is negative");
        return false;
      }
      const LaneMask Released = Barriers.arriveSoftWait(
          I.barrierId(), Lanes, static_cast<uint64_t>(Threshold));
      releaseLanes(Released);
      traceBarrier(observe::TraceEventKind::BarrierSoftWait, I.barrierId(),
                   Lanes, Released);
      return barrierUnitOk();
    }
    const LaneMask Released = checkWarpSyncRelease();
    traceBarrier(observe::TraceEventKind::WarpSyncArrive, 0, Lanes, Released);
    return true;
  }

  switch (Op) {
  case Opcode::Predict:
  case Opcode::Nop:
    forEachLane([&](unsigned, Thread &T) { advance(T); });
    return true;

  case Opcode::Jmp: {
    const BasicBlock *Target = I.operand(0).getBlock();
    forEachLane([&](unsigned, Thread &T) { jumpTo(T, Target); });
    return true;
  }

  case Opcode::Br: {
    const BasicBlock *Then = I.operand(1).getBlock();
    const BasicBlock *Else = I.operand(2).getBlock();
    forEachLane([&](unsigned, Thread &T) {
      jumpTo(T, eval(T, I.operand(0)) != 0 ? Then : Else);
    });
    return true;
  }

  case Opcode::Ret: {
    bool Failed = false;
    forEachLane([&](unsigned Lane, Thread &T) {
      if (Failed)
        return;
      int64_t Value = 0;
      if (I.numOperands() == 1)
        Value = eval(T, I.operand(0));
      if (T.Stack.size() == 1) {
        exitThread(Lane);
        return;
      }
      unsigned RetDst = T.Stack.back().RetDst;
      T.Stack.pop_back();
      if (RetDst != NoRegister)
        writeReg(T, RetDst, Value);
    });
    return !Failed;
  }

  case Opcode::Call: {
    if (!I.operand(0).isFunc()) {
      trap("malformed call: first operand is not a function");
      return false;
    }
    const Function *Callee = I.operand(0).getFunc();
    if (Callee->empty()) {
      trap("call to function '@" + Callee->name() + "' with no blocks");
      return false;
    }
    const unsigned CalleeOrd = funcOrder(Callee);
    bool Failed = false;
    forEachLane([&](unsigned, Thread &T) {
      if (Failed)
        return;
      if (T.Stack.size() >= Config.MaxCallDepth) {
        trap("call depth limit of " + std::to_string(Config.MaxCallDepth) +
             " exceeded calling '@" + Callee->name() +
             "' (unbounded recursion?)");
        Failed = true;
        return;
      }
      Frame New;
      New.F = Callee;
      New.FOrd = CalleeOrd;
      New.Block = Callee->entry()->number();
      New.Index = 0;
      New.RetDst = I.hasDst() ? I.dst() : NoRegister;
      New.Regs.assign(Callee->numRegs(), 0);
      for (unsigned A = 1; A < I.numOperands(); ++A)
        New.Regs[A - 1] = eval(T, I.operand(A));
      advance(T); // Resume after the call upon return.
      T.Stack.push_back(std::move(New));
    });
    return !Failed;
  }

  case Opcode::Load: {
    bool Failed = false;
    forEachLane([&](unsigned, Thread &T) {
      if (Failed)
        return;
      int64_t Addr = eval(T, I.operand(0));
      if (Addr < 0 ||
          static_cast<uint64_t>(Addr) >= GlobalMemory.size()) {
        trap("load out of bounds at address " + std::to_string(Addr));
        Failed = true;
        return;
      }
      writeReg(T, I.dst(), GlobalMemory[static_cast<uint64_t>(Addr)]);
      advance(T);
    });
    return !Failed;
  }

  case Opcode::Store: {
    bool Failed = false;
    // Lanes apply in ascending order; overlapping stores: last lane wins.
    forEachLane([&](unsigned, Thread &T) {
      if (Failed)
        return;
      int64_t Addr = eval(T, I.operand(0));
      if (Addr < 0 ||
          static_cast<uint64_t>(Addr) >= GlobalMemory.size()) {
        trap("store out of bounds at address " + std::to_string(Addr));
        Failed = true;
        return;
      }
      GlobalMemory[static_cast<uint64_t>(Addr)] = eval(T, I.operand(1));
      advance(T);
    });
    return !Failed;
  }

  case Opcode::AtomicAdd: {
    bool Failed = false;
    forEachLane([&](unsigned, Thread &T) {
      if (Failed)
        return;
      int64_t Addr = eval(T, I.operand(0));
      if (Addr < 0 ||
          static_cast<uint64_t>(Addr) >= GlobalMemory.size()) {
        trap("atomicadd out of bounds at address " + std::to_string(Addr));
        Failed = true;
        return;
      }
      int64_t &Cell = GlobalMemory[static_cast<uint64_t>(Addr)];
      writeReg(T, I.dst(), Cell);
      // Wrapping accumulation, matching the Add opcode's semantics.
      Cell = static_cast<int64_t>(static_cast<uint64_t>(Cell) +
                                  static_cast<uint64_t>(
                                      eval(T, I.operand(1))));
      advance(T);
    });
    return !Failed;
  }

  case Opcode::ArrivedCount: {
    if (I.barrierId() >= NumBarrierRegisters) {
      trap("barrier misuse: arrived_count: barrier id " +
           std::to_string(I.barrierId()) + " out of range");
      return false;
    }
    unsigned Count = Barriers.arrivedCount(I.barrierId());
    forEachLane([&](unsigned, Thread &T) {
      writeReg(T, I.dst(), static_cast<int64_t>(Count));
      advance(T);
    });
    return true;
  }

  default: {
    // Pure per-thread value computation. Add/Sub/Mul/Neg use two's-
    // complement wraparound (computed in uint64_t) so that untrusted
    // arithmetic can never be undefined behaviour.
    auto wrap = [](uint64_t V) { return static_cast<int64_t>(V); };
    bool Failed = false;
    forEachLane([&](unsigned Lane, Thread &T) {
      if (Failed)
        return;
      int64_t V = 0;
      switch (Op) {
      case Opcode::Add:
        V = wrap(static_cast<uint64_t>(eval(T, I.operand(0))) +
                 static_cast<uint64_t>(eval(T, I.operand(1))));
        break;
      case Opcode::Sub:
        V = wrap(static_cast<uint64_t>(eval(T, I.operand(0))) -
                 static_cast<uint64_t>(eval(T, I.operand(1))));
        break;
      case Opcode::Mul:
        V = wrap(static_cast<uint64_t>(eval(T, I.operand(0))) *
                 static_cast<uint64_t>(eval(T, I.operand(1))));
        break;
      case Opcode::Div: {
        int64_t D = eval(T, I.operand(1));
        if (D == 0) {
          trap("division by zero in " + printInstruction(I));
          Failed = true;
          return;
        }
        int64_t A = eval(T, I.operand(0));
        // INT64_MIN / -1 overflows; define it to wrap like hardware.
        V = (A == std::numeric_limits<int64_t>::min() && D == -1) ? A
                                                                  : A / D;
        break;
      }
      case Opcode::Rem: {
        int64_t D = eval(T, I.operand(1));
        if (D == 0) {
          trap("remainder by zero in " + printInstruction(I));
          Failed = true;
          return;
        }
        int64_t A = eval(T, I.operand(0));
        V = (A == std::numeric_limits<int64_t>::min() && D == -1) ? 0
                                                                  : A % D;
        break;
      }
      case Opcode::And:
        V = eval(T, I.operand(0)) & eval(T, I.operand(1));
        break;
      case Opcode::Or:
        V = eval(T, I.operand(0)) | eval(T, I.operand(1));
        break;
      case Opcode::Xor:
        V = eval(T, I.operand(0)) ^ eval(T, I.operand(1));
        break;
      case Opcode::Shl:
        V = static_cast<int64_t>(
            static_cast<uint64_t>(eval(T, I.operand(0)))
            << (static_cast<uint64_t>(eval(T, I.operand(1))) & 63));
        break;
      case Opcode::Shr:
        V = static_cast<int64_t>(
            static_cast<uint64_t>(eval(T, I.operand(0))) >>
            (static_cast<uint64_t>(eval(T, I.operand(1))) & 63));
        break;
      case Opcode::Min:
        V = std::min(eval(T, I.operand(0)), eval(T, I.operand(1)));
        break;
      case Opcode::Max:
        V = std::max(eval(T, I.operand(0)), eval(T, I.operand(1)));
        break;
      case Opcode::Not:
        V = ~eval(T, I.operand(0));
        break;
      case Opcode::Neg:
        V = wrap(0 - static_cast<uint64_t>(eval(T, I.operand(0))));
        break;
      case Opcode::Mov:
        V = eval(T, I.operand(0));
        break;
      case Opcode::CmpEQ:
        V = eval(T, I.operand(0)) == eval(T, I.operand(1));
        break;
      case Opcode::CmpNE:
        V = eval(T, I.operand(0)) != eval(T, I.operand(1));
        break;
      case Opcode::CmpLT:
        V = eval(T, I.operand(0)) < eval(T, I.operand(1));
        break;
      case Opcode::CmpLE:
        V = eval(T, I.operand(0)) <= eval(T, I.operand(1));
        break;
      case Opcode::CmpGT:
        V = eval(T, I.operand(0)) > eval(T, I.operand(1));
        break;
      case Opcode::CmpGE:
        V = eval(T, I.operand(0)) >= eval(T, I.operand(1));
        break;
      case Opcode::Select:
        V = eval(T, I.operand(0)) != 0 ? eval(T, I.operand(1))
                                       : eval(T, I.operand(2));
        break;
      case Opcode::Tid:
        V = static_cast<int64_t>(Lane);
        break;
      case Opcode::LaneId:
        V = static_cast<int64_t>(Lane);
        break;
      case Opcode::WarpSize:
        V = static_cast<int64_t>(Config.WarpSize);
        break;
      case Opcode::Rand:
        V = static_cast<int64_t>(T.Rand.next() >> 1);
        break;
      case Opcode::RandRange: {
        int64_t Lo = eval(T, I.operand(0));
        int64_t Hi = eval(T, I.operand(1));
        if (Lo >= Hi) {
          trap("randrange with empty range [" + std::to_string(Lo) + ", " +
               std::to_string(Hi) + ")");
          Failed = true;
          return;
        }
        V = T.Rand.nextInRange(Lo, Hi);
        break;
      }
      default:
        trap(std::string("unimplemented opcode ") + getOpcodeName(Op));
        Failed = true;
        return;
      }
      writeReg(T, I.dst(), V);
      advance(T);
    });
    return !Failed;
  }
  }
}

void WarpSimulator::pickReadyGroup(LaneMask Eligible, const Pc *&ChosenPc,
                                   LaneMask &ChosenLanes) {
  ChosenPc = nullptr;
  ChosenLanes = 0;
  switch (Config.Policy) {
  case SchedulerPolicy::MaxConvergence: {
    for (const Group &G : ReadyGroups) {
      const LaneMask Lanes = G.Lanes & Eligible;
      if (!Lanes)
        continue;
      if (!ChosenPc || std::popcount(Lanes) > std::popcount(ChosenLanes)) {
        ChosenPc = &G.Where;
        ChosenLanes = Lanes;
      }
    }
    break;
  }
  case SchedulerPolicy::MinPC: {
    for (const Group &G : ReadyGroups) {
      const LaneMask Lanes = G.Lanes & Eligible;
      if (!Lanes)
        continue;
      ChosenPc = &G.Where;
      ChosenLanes = Lanes;
      break;
    }
    break;
  }
  case SchedulerPolicy::RoundRobin: {
    // Pick the group containing the next preferred (eligible) lane.
    for (unsigned Offset = 0; Offset < Config.WarpSize; ++Offset) {
      unsigned Lane = (RoundRobinNext + Offset) % Config.WarpSize;
      if (!(Eligible & (1ull << Lane)))
        continue;
      for (const Group &G : ReadyGroups) {
        if (G.Lanes & (1ull << Lane)) {
          ChosenPc = &G.Where;
          ChosenLanes = G.Lanes & Eligible;
          break;
        }
      }
      if (ChosenPc)
        break;
    }
    RoundRobinNext = (RoundRobinNext + 1) % Config.WarpSize;
    break;
  }
  }
}

void WarpSimulator::updateReadyGroups() {
  if (!DirtyLanes)
    return;
  // Drop the dirty lanes wherever they currently sit.
  size_t Out = 0;
  for (Group &G : ReadyGroups) {
    G.Lanes &= ~DirtyLanes;
    if (G.Lanes) {
      if (Out != static_cast<size_t>(&G - ReadyGroups.data()))
        ReadyGroups[Out] = G;
      ++Out;
    }
  }
  ReadyGroups.resize(Out);
  // Re-insert the ones still ready at their (possibly new) PC; the vector
  // stays sorted, so scheduler tie-breaks are identical to a full rebuild.
  LaneMask Remaining = DirtyLanes;
  while (Remaining) {
    unsigned Lane = static_cast<unsigned>(std::countr_zero(Remaining));
    Remaining &= Remaining - 1;
    const Thread &T = Threads[Lane];
    if (T.Status != ThreadStatus::Ready)
      continue;
    Pc Where = pcOf(T);
    auto It = std::lower_bound(
        ReadyGroups.begin(), ReadyGroups.end(), Where,
        [](const Group &G, const Pc &P) { return G.Where < P; });
    if (It != ReadyGroups.end() && It->Where == Where)
      It->Lanes |= 1ull << Lane;
    else
      ReadyGroups.insert(It, {Where, 1ull << Lane});
  }
  DirtyLanes = 0;
}

void WarpSimulator::finalizeProfile() {
  if (!Config.ProfileBlocks)
    return;
  for (size_t R = 0; R < FuncsByOrder.size(); ++R) {
    const Function *F = FuncsByOrder[R];
    for (size_t B = 0; B < F->size(); ++B) {
      const unsigned Slot = ProfileBase[R] + static_cast<unsigned>(B);
      if (BlockProf[Slot].Issues)
        Stats.Blocks[{F->name(), F->block(B)->name()}] = BlockProf[Slot];
      if (BranchProf[Slot].Executions)
        Stats.Branches[{F->name(), F->block(B)->name()}] = BranchProf[Slot];
    }
  }
}

RunResult WarpSimulator::run() {
  Result = RunResult();
  Result.Stats.WarpSize = Config.WarpSize;

  // Pre-run validation: reject broken launches and malformed IR with a
  // structured status instead of relying on interior assertions.
  {
    std::vector<std::string> Errors = PrelaunchErrors;
    if (Errors.empty())
      validateLaunch(Errors);
    if (!Errors.empty()) {
      Result.St = RunResult::Status::Malformed;
      std::string Joined;
      for (const std::string &E : Errors) {
        if (!Joined.empty())
          Joined += "; ";
        Joined += E;
      }
      Result.TrapMessage = Joined;
      Result.Stats = Stats;
      return Result;
    }
  }

  // Progress-model launch state (docs/PROGRESS.md). Everything here is
  // deterministic, so weak-model runs digest-golden exactly like fair ones.
  const ProgressModel PModel = Config.Progress.Model;
  if (PModel == ProgressModel::OBE) {
    const unsigned Slots =
        Config.Progress.Param == 0
            ? std::max(1u, Config.WarpSize / 2)
            : std::min(Config.Progress.Param, Config.WarpSize);
    Resident = Slots >= 64 ? ~0ull : ((1ull << Slots) - 1);
  }
  const uint32_t FairnessBound =
      Config.Progress.Param == 0 ? 4u : Config.Progress.Param;
  if (PModel == ProgressModel::Bounded)
    LaneWaits.assign(Config.WarpSize, 0);

  const bool UseWatchdog = Config.MaxWallMillis > 0;
  const auto StartTime = std::chrono::steady_clock::now();

  while (true) {
    if (Trapped)
      break;
    if (Stats.IssueSlots >= Config.MaxIssueSlots) {
      Result.St = RunResult::Status::IssueLimit;
      Result.TrapMessage =
          "issue-slot limit of " + std::to_string(Config.MaxIssueSlots) +
          " reached after " + std::to_string(Stats.Cycles) +
          " cycles (livelock guard; raise LaunchConfig::MaxIssueSlots if "
          "the kernel legitimately runs longer)";
      break;
    }
    if (UseWatchdog && (Stats.IssueSlots & 0xfffu) == 0) {
      const auto Elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - StartTime)
              .count();
      if (static_cast<uint64_t>(Elapsed) >= Config.MaxWallMillis) {
        Result.St = RunResult::Status::Timeout;
        Result.TrapMessage =
            "wall-clock watchdog expired after " + std::to_string(Elapsed) +
            " ms (limit " + std::to_string(Config.MaxWallMillis) + " ms, " +
            std::to_string(Stats.IssueSlots) + " issue slots)";
        break;
      }
    }

    // Fold the lanes whose PC or status changed since the last issue into
    // the persistent sorted group structure. Ties and ordering behave
    // exactly like the full rebuild + sort this replaces.
    updateReadyGroups();
    if (LiveThreads == 0) {
      Result.St = RunResult::Status::Finished;
      break;
    }
    if (ReadyGroups.empty()) {
      // Every live thread is blocked on a barrier.
      if (!Config.YieldOnDeadlock) {
        Result.St = RunResult::Status::Deadlock;
        Result.TrapMessage = "all live threads are blocked: " +
                             describeBlockedThreads();
        break;
      }
      LaneMask Released = Barriers.yield();
      if (Released == 0) {
        Result.St = RunResult::Status::Deadlock;
        Result.TrapMessage =
            "forward-progress yield released nothing (threads blocked "
            "outside the barrier unit): " + describeBlockedThreads();
        break;
      }
      // Count only yields that actually released lanes, so the counter
      // means "successful forward-progress interventions".
      ++Stats.BarrierYields;
      releaseLanes(Released);
      traceBarrier(observe::TraceEventKind::BarrierYield, 0, 0, Released);
      continue;
    }

    // Scheduling: the progress model decides which ready groups are
    // eligible, then the policy picks among them (docs/PROGRESS.md).
    const Pc *ChosenPc = nullptr;
    LaneMask ChosenLanes = 0;
    bool ProgressStalled = false;
    switch (PModel) {
    case ProgressModel::Fair:
      pickReadyGroup(~0ull, ChosenPc, ChosenLanes);
      break;
    case ProgressModel::HSA: {
      // Only the oldest non-exited lane's group is guaranteed service; the
      // weakest conforming scheduler serves nothing else. If that lane is
      // blocked while other groups are ready, no conforming pick can ever
      // unblock it — the warp livelocks under this model.
      unsigned Oldest = 0;
      while (Threads[Oldest].Status == ThreadStatus::Exited)
        ++Oldest;
      if (Threads[Oldest].Status != ThreadStatus::Ready) {
        Result.St = RunResult::Status::ProgressLivelock;
        Result.TrapMessage =
            "progress model hsa: oldest live lane " +
            std::to_string(Oldest) +
            " is blocked while other groups are ready; the weakest "
            "conforming scheduler never serves them: " +
            describeBlockedThreads();
        ProgressStalled = true;
        break;
      }
      for (const Group &G : ReadyGroups) {
        if (G.Lanes & (1ull << Oldest)) {
          ChosenPc = &G.Where;
          ChosenLanes = G.Lanes;
          break;
        }
      }
      if (ReadyGroups.size() > 1)
        ++Stats.ProgressRestrictedPicks;
      break;
    }
    case ProgressModel::OBE: {
      LaneMask ReadyLanes = 0;
      for (const Group &G : ReadyGroups)
        ReadyLanes |= G.Lanes;
      if (!(ReadyLanes & Resident)) {
        // Every resident lane is blocked or exited while non-resident
        // lanes are ready: an occupancy-bound scheduler never starts them.
        Result.St = RunResult::Status::ProgressLivelock;
        Result.TrapMessage =
            "progress model " + formatProgressSpec(Config.Progress) +
            ": every resident lane is blocked while only non-resident "
            "lanes are ready; an occupancy-bound scheduler never starts "
            "them: " + describeBlockedThreads();
        ProgressStalled = true;
        break;
      }
      if (ReadyLanes & ~Resident)
        ++Stats.ProgressRestrictedPicks;
      pickReadyGroup(Resident, ChosenPc, ChosenLanes);
      break;
    }
    case ProgressModel::Bounded: {
      pickReadyGroup(~0ull, ChosenPc, ChosenLanes);
      // Fairness bound: any ready lane must issue within K picks. When the
      // most-starved ready lane (ties: lowest id) hits the bound without
      // being picked, its group is forced instead.
      LaneMask ReadyLanes = 0;
      for (const Group &G : ReadyGroups)
        ReadyLanes |= G.Lanes;
      unsigned Starved = Config.WarpSize;
      uint32_t MaxWait = 0;
      LaneMask Remaining = ReadyLanes;
      while (Remaining) {
        const unsigned Lane =
            static_cast<unsigned>(std::countr_zero(Remaining));
        Remaining &= Remaining - 1;
        if (LaneWaits[Lane] > MaxWait) {
          MaxWait = LaneWaits[Lane];
          Starved = Lane;
        }
      }
      if (Starved < Config.WarpSize && MaxWait >= FairnessBound &&
          !(ChosenLanes & (1ull << Starved))) {
        for (const Group &G : ReadyGroups) {
          if (G.Lanes & (1ull << Starved)) {
            ChosenPc = &G.Where;
            ChosenLanes = G.Lanes;
            break;
          }
        }
        ++Stats.ProgressForcedPicks;
        traceBarrier(observe::TraceEventKind::ProgressForced, 0, ChosenLanes,
                     1ull << Starved);
      }
      Remaining = ReadyLanes;
      while (Remaining) {
        const unsigned Lane =
            static_cast<unsigned>(std::countr_zero(Remaining));
        Remaining &= Remaining - 1;
        if (ChosenLanes & (1ull << Lane))
          LaneWaits[Lane] = 0;
        else
          ++LaneWaits[Lane];
      }
      break;
    }
    }
    if (ProgressStalled)
      break;
    if (!ChosenPc) {
      trap("scheduler found no issuable group despite ready threads");
      break;
    }
    // Every issued lane advances, jumps, waits or exits below — fold them
    // into the next group update. Copy the chosen PC: the insertions that
    // update triggers would invalidate a pointer into ReadyGroups.
    const Pc Chosen = *ChosenPc;
    DirtyLanes |= ChosenLanes;

    const Function *F = Chosen.F;
    if (Chosen.Block >= F->size()) {
      trap("program counter names block " + std::to_string(Chosen.Block) +
           " past the end of @" + F->name());
      break;
    }
    const BasicBlock *BB = F->block(Chosen.Block);
    if (Chosen.Index >= BB->size()) {
      trap("program counter past the end of block '" + BB->name() +
           "' in @" + F->name());
      break;
    }
    const Instruction &I = BB->inst(Chosen.Index);

    if (Tracer)
      Tracer(*F, *BB, Chosen.Index, ChosenLanes);

    const uint32_t Latency = Config.Latency.cost(I.opcode());
    if (Tracing) {
      observe::TraceEvent E;
      E.Kind = observe::TraceEventKind::Issue;
      E.F = F;
      E.BB = BB;
      E.Index = static_cast<uint32_t>(Chosen.Index);
      E.Lanes = ChosenLanes;
      E.Latency = Latency;
      traceEvent(E); // Stamped with the pre-issue slot/cycle counters.
    }
    const unsigned Active = static_cast<unsigned>(std::popcount(ChosenLanes));
    ++Stats.IssueSlots;
    Stats.Cycles += Latency;
    Stats.ActiveThreads += Active;
    Stats.ActiveLatency += static_cast<uint64_t>(Active) * Latency;

    // Coalescing accounting: distinct 32-word segments per memory issue.
    // A warp holds at most 64 lanes, so a fixed buffer with a linear
    // membership scan replaces the per-issue std::set (and its
    // allocations); coalesced access patterns keep the scan length tiny.
    if (I.opcode() == Opcode::Load || I.opcode() == Opcode::Store ||
        I.opcode() == Opcode::AtomicAdd) {
      constexpr unsigned WordsPerSegment = 32;
      int64_t Segments[64];
      unsigned NumSegments = 0;
      LaneMask Remaining = ChosenLanes;
      while (Remaining) {
        unsigned Lane = static_cast<unsigned>(std::countr_zero(Remaining));
        Remaining &= Remaining - 1;
        const int64_t Seg =
            eval(Threads[Lane], I.operand(0)) / WordsPerSegment;
        bool Seen = false;
        for (unsigned S = 0; S < NumSegments; ++S) {
          if (Segments[S] == Seg) {
            Seen = true;
            break;
          }
        }
        if (!Seen)
          Segments[NumSegments++] = Seg;
      }
      ++Stats.MemIssues;
      Stats.MemTransactions += NumSegments;
      Stats.MemMinTransactions +=
          (Active + WordsPerSegment - 1) / WordsPerSegment;
    }
    if (Config.ProfileBlocks) {
      // Dense counters indexed by (function ordinal, block number); the
      // string-keyed maps are materialized once by finalizeProfile().
      const unsigned Slot = ProfileBase[Chosen.FOrd] + Chosen.Block;
      BlockProfile &P = BlockProf[Slot];
      ++P.Issues;
      P.ActiveThreads += Active;
      P.Cycles += Latency;
      if (I.opcode() == Opcode::Br) {
        BranchProfile &BP = BranchProf[Slot];
        ++BP.Executions;
        bool Taken = false, NotTaken = false;
        LaneMask Remaining = ChosenLanes;
        while (Remaining) {
          unsigned Lane =
              static_cast<unsigned>(std::countr_zero(Remaining));
          Remaining &= Remaining - 1;
          (eval(Threads[Lane], I.operand(0)) != 0 ? Taken : NotTaken) =
              true;
        }
        BP.Divergent += Taken && NotTaken;
      }
    }

    if (!execute(I, ChosenLanes))
      break;
  }

  finalizeProfile();
  Result.Stats = Stats;
  if (Config.CollectTraceDigest)
    Result.TraceDigest = Digest.digest();
  return Result;
}
