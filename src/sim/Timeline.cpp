//===- Timeline.cpp - ASCII execution timelines ----------------------------------===//

#include "sim/Timeline.h"

#include <algorithm>

using namespace simtsr;

void Timeline::attach(WarpSimulator &Sim) {
  Sim.setTracer([this](const Function &F, const BasicBlock &BB, size_t,
                       LaneMask Lanes) {
    Issues.push_back({F.name() + "." + BB.name(), Lanes});
  });
}

char Timeline::letterFor(const std::string &Where) const {
  auto It = std::find(Order.begin(), Order.end(), Where);
  size_t Index;
  if (It == Order.end()) {
    Order.push_back(Where);
    Index = Order.size() - 1;
  } else {
    Index = static_cast<size_t>(It - Order.begin());
  }
  static const char Alphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
  return Alphabet[Index % (sizeof(Alphabet) - 1)];
}

std::string Timeline::render(bool MergeSameBlockRuns, size_t MaxRows) const {
  std::string Out = "one column per lane (0.." +
                    std::to_string(WarpSize - 1) +
                    "), time flows downward; '.' = lane idle\n";

  size_t Rows = 0;
  size_t I = 0;
  size_t Skipped = 0;
  while (I < Issues.size()) {
    const std::string &Where = Issues[I].Where;
    LaneMask Lanes = Issues[I].Lanes;
    size_t RunLength = 1;
    if (MergeSameBlockRuns) {
      while (I + RunLength < Issues.size() &&
             Issues[I + RunLength].Where == Where &&
             Issues[I + RunLength].Lanes == Lanes)
        ++RunLength;
    }
    I += RunLength;
    if (Rows >= MaxRows) {
      ++Skipped;
      continue;
    }
    ++Rows;
    char Letter = letterFor(Where);
    std::string Row;
    for (unsigned L = 0; L < WarpSize; ++L)
      Row += (Lanes >> L) & 1 ? Letter : '.';
    Out += Row;
    if (RunLength > 1)
      Out += " x" + std::to_string(RunLength);
    Out += "\n";
  }
  if (Skipped)
    Out += "(+" + std::to_string(Skipped) + " more rows)\n";
  return Out;
}

std::string Timeline::legend() const {
  std::string Out;
  static const char Alphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
  for (size_t I = 0; I < Order.size(); ++I) {
    Out += "  ";
    Out += Alphabet[I % (sizeof(Alphabet) - 1)];
    Out += " = " + Order[I] + "\n";
  }
  return Out;
}
