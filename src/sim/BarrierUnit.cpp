//===- BarrierUnit.cpp - Convergence-barrier state ----------------------------===//

#include "sim/BarrierUnit.h"

#include <bit>
#include <cassert>

using namespace simtsr;

BarrierUnit::BarrierUnit() : Barriers(NumBarrierRegisters) {}

LaneMask BarrierUnit::join(unsigned BarrierId, LaneMask Lanes) {
  assert(BarrierId < Barriers.size() && "barrier id out of range");
  Barrier &B = Barriers[BarrierId];
  B.Participants = Lanes;
  return tryRelease(B);
}

LaneMask BarrierUnit::tryRelease(Barrier &B) {
  if (B.Waiters == 0)
    return 0;
  bool Release;
  if (B.Soft) {
    const uint64_t Waiting = std::popcount(B.Waiters);
    const uint64_t Members = std::popcount(B.Participants);
    Release = Waiting >= std::min<uint64_t>(B.MinThreshold, Members);
  } else {
    Release = (B.Participants & ~B.Waiters) == 0;
  }
  if (!Release)
    return 0;
  LaneMask Released = B.Waiters;
  if (!B.Soft)
    B.Participants &= ~Released; // Classic waits clear membership.
  B.Waiters = 0;
  B.Soft = false;
  B.MinThreshold = ~0ull;
  return Released;
}

LaneMask BarrierUnit::cancel(unsigned BarrierId, LaneMask Lanes) {
  assert(BarrierId < Barriers.size() && "barrier id out of range");
  Barrier &B = Barriers[BarrierId];
  B.Participants &= ~Lanes;
  return tryRelease(B);
}

LaneMask BarrierUnit::arriveWait(unsigned BarrierId, LaneMask Lanes) {
  assert(BarrierId < Barriers.size() && "barrier id out of range");
  Barrier &B = Barriers[BarrierId];
  assert((B.Waiters == 0 || !B.Soft) &&
         "mixing classic and soft waits on one barrier");
  B.Waiters |= Lanes;
  B.Soft = false;
  return tryRelease(B);
}

LaneMask BarrierUnit::arriveSoftWait(unsigned BarrierId, LaneMask Lanes,
                                     uint64_t Threshold) {
  assert(BarrierId < Barriers.size() && "barrier id out of range");
  Barrier &B = Barriers[BarrierId];
  assert((B.Waiters == 0 || B.Soft) &&
         "mixing classic and soft waits on one barrier");
  B.Waiters |= Lanes;
  B.Soft = true;
  B.MinThreshold = std::min(B.MinThreshold, Threshold);
  return tryRelease(B);
}

LaneMask BarrierUnit::threadExit(LaneMask Lanes) {
  LaneMask Released = 0;
  for (Barrier &B : Barriers) {
    B.Participants &= ~Lanes;
    B.Waiters &= ~Lanes;
    Released |= tryRelease(B);
  }
  return Released;
}

LaneMask BarrierUnit::yield() {
  Barrier *Best = nullptr;
  for (Barrier &B : Barriers)
    if (B.Waiters != 0 &&
        (!Best ||
         std::popcount(B.Waiters) > std::popcount(Best->Waiters)))
      Best = &B;
  if (!Best)
    return 0;
  LaneMask Released = Best->Waiters;
  if (!Best->Soft)
    Best->Participants &= ~Released;
  Best->Waiters = 0;
  Best->Soft = false;
  Best->MinThreshold = ~0ull;
  return Released;
}

LaneMask BarrierUnit::participants(unsigned BarrierId) const {
  assert(BarrierId < Barriers.size() && "barrier id out of range");
  return Barriers[BarrierId].Participants;
}

LaneMask BarrierUnit::waiters(unsigned BarrierId) const {
  assert(BarrierId < Barriers.size() && "barrier id out of range");
  return Barriers[BarrierId].Waiters;
}

unsigned BarrierUnit::arrivedCount(unsigned BarrierId) const {
  return static_cast<unsigned>(std::popcount(waiters(BarrierId)));
}

bool BarrierUnit::anyWaiters() const {
  for (const Barrier &B : Barriers)
    if (B.Waiters != 0)
      return true;
  return false;
}
