//===- BarrierUnit.cpp - Convergence-barrier state ----------------------------===//

#include "sim/BarrierUnit.h"

#include <bit>
#include <cstdio>

using namespace simtsr;

BarrierUnit::BarrierUnit() : Barriers(NumBarrierRegisters) {}

void BarrierUnit::fail(std::string Message) {
  if (LastError.empty())
    LastError = std::move(Message);
}

std::string BarrierUnit::takeError() {
  std::string E = std::move(LastError);
  LastError.clear();
  return E;
}

bool BarrierUnit::checkId(unsigned BarrierId, const char *Op) {
  if (BarrierId < Barriers.size())
    return true;
  fail(std::string(Op) + ": barrier id " + std::to_string(BarrierId) +
       " out of range (register file has " +
       std::to_string(Barriers.size()) + " barriers)");
  return false;
}

LaneMask BarrierUnit::join(unsigned BarrierId, LaneMask Lanes) {
  if (!checkId(BarrierId, "join"))
    return 0;
  Barrier &B = Barriers[BarrierId];
  B.Participants = Lanes;
  return tryRelease(B);
}

LaneMask BarrierUnit::tryRelease(Barrier &B) {
  if (B.Waiters == 0)
    return 0;
  bool Release;
  if (B.Soft) {
    const uint64_t Waiting = std::popcount(B.Waiters);
    const uint64_t Members = std::popcount(B.Participants);
    Release = Waiting >= std::min<uint64_t>(B.MinThreshold, Members);
  } else {
    Release = (B.Participants & ~B.Waiters) == 0;
  }
  if (!Release)
    return 0;
  LaneMask Released = B.Waiters;
  if (!B.Soft)
    B.Participants &= ~Released; // Classic waits clear membership.
  B.Waiters = 0;
  B.Soft = false;
  B.MinThreshold = ~0ull;
  return Released;
}

LaneMask BarrierUnit::cancel(unsigned BarrierId, LaneMask Lanes) {
  if (!checkId(BarrierId, "cancel"))
    return 0;
  Barrier &B = Barriers[BarrierId];
  B.Participants &= ~Lanes;
  return tryRelease(B);
}

LaneMask BarrierUnit::arriveWait(unsigned BarrierId, LaneMask Lanes) {
  if (!checkId(BarrierId, "wait"))
    return 0;
  Barrier &B = Barriers[BarrierId];
  if (B.Waiters != 0 && B.Soft) {
    fail("wait: classic wait on barrier b" + std::to_string(BarrierId) +
         " which already has soft waiters");
    return 0;
  }
  B.Waiters |= Lanes;
  B.Soft = false;
  return tryRelease(B);
}

LaneMask BarrierUnit::arriveSoftWait(unsigned BarrierId, LaneMask Lanes,
                                     uint64_t Threshold) {
  if (!checkId(BarrierId, "softwait"))
    return 0;
  Barrier &B = Barriers[BarrierId];
  if (B.Waiters != 0 && !B.Soft) {
    fail("softwait: soft wait on barrier b" + std::to_string(BarrierId) +
         " which already has classic waiters");
    return 0;
  }
  B.Waiters |= Lanes;
  B.Soft = true;
  B.MinThreshold = std::min(B.MinThreshold, Threshold);
  return tryRelease(B);
}

LaneMask BarrierUnit::threadExit(LaneMask Lanes) {
  LaneMask Released = 0;
  for (Barrier &B : Barriers) {
    B.Participants &= ~Lanes;
    B.Waiters &= ~Lanes;
    Released |= tryRelease(B);
  }
  return Released;
}

LaneMask BarrierUnit::yield() {
  Barrier *Best = nullptr;
  for (Barrier &B : Barriers)
    if (B.Waiters != 0 &&
        (!Best ||
         std::popcount(B.Waiters) > std::popcount(Best->Waiters)))
      Best = &B;
  if (!Best)
    return 0;
  LaneMask Released = Best->Waiters;
  if (!Best->Soft)
    Best->Participants &= ~Released;
  Best->Waiters = 0;
  Best->Soft = false;
  Best->MinThreshold = ~0ull;
  return Released;
}

LaneMask BarrierUnit::participants(unsigned BarrierId) const {
  return BarrierId < Barriers.size() ? Barriers[BarrierId].Participants : 0;
}

LaneMask BarrierUnit::waiters(unsigned BarrierId) const {
  return BarrierId < Barriers.size() ? Barriers[BarrierId].Waiters : 0;
}

unsigned BarrierUnit::arrivedCount(unsigned BarrierId) const {
  return static_cast<unsigned>(std::popcount(waiters(BarrierId)));
}

bool BarrierUnit::anyWaiters() const {
  for (const Barrier &B : Barriers)
    if (B.Waiters != 0)
      return true;
  return false;
}

namespace {

std::string hexMask(LaneMask M) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "0x%llx",
                static_cast<unsigned long long>(M));
  return Buf;
}

} // namespace

std::string BarrierUnit::describeState() const {
  std::string S;
  for (size_t Id = 0; Id < Barriers.size(); ++Id) {
    const Barrier &B = Barriers[Id];
    if (B.Participants == 0 && B.Waiters == 0)
      continue;
    if (!S.empty())
      S += "; ";
    S += "b" + std::to_string(Id) + (B.Soft ? " (soft)" : "") +
         ": participants=" + hexMask(B.Participants) +
         " waiters=" + hexMask(B.Waiters);
  }
  return S.empty() ? "no barrier has live state" : S;
}
