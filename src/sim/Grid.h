//===- Grid.h - Multi-warp launches ----------------------------*- C++ -*-===//
///
/// \file
/// Whole-launch measurements: runs several independent warps of the same
/// kernel (distinct per-warp RNG streams, as on a real grid where each
/// warp draws different work) and aggregates their statistics. Warps run
/// in isolation — each against its own global-memory image — matching the
/// Table 2 workloads, whose warps never communicate. The paper's
/// whole-kernel nvprof numbers correspond to this aggregate rather than
/// to a single warp.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SIM_GRID_H
#define SIMTSR_SIM_GRID_H

#include "sim/Warp.h"
#include "support/Stats.h"

#include <functional>

namespace simtsr {

/// How runGrid executes its warps. Both modes produce bit-identical
/// GridResults: the parallel engine runs warps concurrently on the global
/// ThreadPool, then reduces per-warp statistics in warp-index order,
/// replicating the sequential loop's aggregation (including its stop at
/// the first failing warp) exactly.
enum class GridMode {
  Parallel,   ///< Warps on the global thread pool (default).
  Sequential, ///< One warp at a time, in index order.
};

struct GridResult {
  /// All warps finished cleanly.
  bool Ok = true;
  /// First failing warp's status/message when !Ok.
  RunResult::Status FailStatus = RunResult::Status::Finished;
  std::string FailMessage;
  unsigned WarpsRun = 0;

  uint64_t TotalCycles = 0;      ///< Sum over warps (serialized view).
  uint64_t MaxCycles = 0;        ///< Slowest warp (parallel view).
  uint64_t TotalIssueSlots = 0;
  double SimtEfficiency = 0.0;   ///< Cycle-weighted across warps.
  RunningStat PerWarpEfficiency; ///< Distribution across warps.
  uint64_t CombinedChecksum = 0; ///< Order-independent mix of warp sums.
  /// Per-warp trace digests folded in warp-index order; 0 unless
  /// LaunchConfig::CollectTraceDigest was set. Identical across
  /// GridMode::Parallel and Sequential (docs/OBSERVABILITY.md).
  uint64_t TraceDigest = 0;
};

/// The per-warp launch configuration runGrid uses for warp \p W: seed
/// `Base.Seed * 1000003 + W`, external trace sink cleared (parallel warps
/// cannot share one sink; per-warp digests still work). Exposed so tools
/// can replay a single grid warp in isolation with a recorder attached.
LaunchConfig gridWarpConfig(const LaunchConfig &Base, unsigned W);

/// Runs \p Warps instances of \p Kernel; warp w uses seed
/// `config.Seed * 1000003 + w`. \p InitMemory (may be null) is applied to
/// every warp's fresh memory image; under GridMode::Parallel its calls are
/// serialized (one warp at a time) but arrive in unspecified warp order,
/// so it may mutate captured state without locking as long as the result
/// does not depend on warp order. The module is verified once per grid,
/// not once per warp.
GridResult
runGrid(const Module &M, const Function *Kernel, LaunchConfig Config,
        unsigned Warps,
        const std::function<void(WarpSimulator &)> &InitMemory = nullptr,
        GridMode Mode = GridMode::Parallel);

} // namespace simtsr

#endif // SIMTSR_SIM_GRID_H
