//===- Grid.cpp - Multi-warp launches ----------------------------------------===//

#include "sim/Grid.h"

using namespace simtsr;

GridResult simtsr::runGrid(
    const Module &M, const Function *Kernel, LaunchConfig Config,
    unsigned Warps,
    const std::function<void(WarpSimulator &)> &InitMemory) {
  GridResult Result;
  uint64_t ActiveLatency = 0;
  for (unsigned W = 0; W < Warps; ++W) {
    LaunchConfig WarpConfig = Config;
    WarpConfig.Seed = Config.Seed * 1000003ull + W;
    WarpSimulator Sim(M, Kernel, WarpConfig);
    if (InitMemory)
      InitMemory(Sim);
    RunResult R = Sim.run();
    ++Result.WarpsRun;
    if (!R.ok()) {
      Result.Ok = false;
      Result.FailStatus = R.St;
      Result.FailMessage = R.TrapMessage;
      return Result;
    }
    Result.TotalCycles += R.Stats.Cycles;
    Result.MaxCycles = std::max(Result.MaxCycles, R.Stats.Cycles);
    Result.TotalIssueSlots += R.Stats.IssueSlots;
    ActiveLatency += R.Stats.ActiveLatency;
    Result.PerWarpEfficiency.add(R.Stats.simtEfficiency());
    // Order-independent checksum combination.
    Result.CombinedChecksum ^=
        Sim.memoryChecksum() * 0x9e3779b97f4a7c15ull + W;
  }
  if (Result.TotalCycles > 0)
    Result.SimtEfficiency =
        static_cast<double>(ActiveLatency) /
        (static_cast<double>(Result.TotalCycles) * Config.WarpSize);
  return Result;
}
