//===- Grid.cpp - Multi-warp launches ----------------------------------------===//

#include "sim/Grid.h"

#include "support/ThreadPool.h"

#include <atomic>
#include <cassert>
#include <mutex>

using namespace simtsr;

namespace {

/// Everything a warp contributes to the grid aggregate, captured into a
/// per-warp slot so the reduction can run in warp-index order regardless
/// of completion order.
struct WarpOutcome {
  RunResult R;
  uint64_t Checksum = 0;
  bool Ran = false;
};

/// Folds completed warps into \p Result in warp-index order, stopping at
/// the first failing warp — byte-for-byte the sequential loop's behavior.
GridResult reduceInOrder(const std::vector<WarpOutcome> &Outcomes,
                         const LaunchConfig &Config) {
  GridResult Result;
  uint64_t ActiveLatency = 0;
  for (unsigned W = 0; W < Outcomes.size(); ++W) {
    const WarpOutcome &O = Outcomes[W];
    assert(O.Ran && "warp before the first failure was skipped");
    const RunResult &R = O.R;
    ++Result.WarpsRun;
    if (!R.ok()) {
      Result.Ok = false;
      Result.FailStatus = R.St;
      Result.FailMessage = R.TrapMessage;
      // Fold the failing warp's partial schedule too: a run stopped by a
      // progress livelock still has a deterministic digest, which the
      // progress probe goldens pin (clean-run digests are unaffected).
      Result.TraceDigest =
          observe::combineTraceDigests(Result.TraceDigest, R.TraceDigest);
      return Result;
    }
    Result.TotalCycles += R.Stats.Cycles;
    Result.MaxCycles = std::max(Result.MaxCycles, R.Stats.Cycles);
    Result.TotalIssueSlots += R.Stats.IssueSlots;
    ActiveLatency += R.Stats.ActiveLatency;
    Result.PerWarpEfficiency.add(R.Stats.simtEfficiency());
    // Order-independent checksum combination.
    Result.CombinedChecksum ^= O.Checksum * 0x9e3779b97f4a7c15ull + W;
    // Order-dependent digest fold — deterministic because this reduction
    // always walks warps in index order, in both grid modes.
    Result.TraceDigest =
        observe::combineTraceDigests(Result.TraceDigest, R.TraceDigest);
  }
  if (Result.TotalCycles > 0)
    Result.SimtEfficiency =
        static_cast<double>(ActiveLatency) /
        (static_cast<double>(Result.TotalCycles) * Config.WarpSize);
  return Result;
}

} // namespace

LaunchConfig simtsr::gridWarpConfig(const LaunchConfig &Base, unsigned W) {
  LaunchConfig C = Base;
  C.Seed = Base.Seed * 1000003ull + W;
  // One external sink cannot absorb concurrently-running warps; per-warp
  // digests (CollectTraceDigest) remain available in either mode.
  C.Trace = nullptr;
  return C;
}

GridResult simtsr::runGrid(
    const Module &M, const Function *Kernel, LaunchConfig Config,
    unsigned Warps,
    const std::function<void(WarpSimulator &)> &InitMemory, GridMode Mode) {
  // Verify the module once for the whole grid; every warp reuses the
  // result (historically each warp re-verified the entire module).
  LaunchVerification LocalVerification;
  if (!(Config.Verified && Config.Verified->M == &M)) {
    LocalVerification = verifyLaunchModule(M);
    Config.Verified = &LocalVerification;
  }

  if (Mode == GridMode::Sequential || Warps <= 1) {
    std::vector<WarpOutcome> Outcomes;
    Outcomes.reserve(Warps);
    for (unsigned W = 0; W < Warps; ++W) {
      WarpSimulator Sim(M, Kernel, gridWarpConfig(Config, W));
      if (InitMemory)
        InitMemory(Sim);
      WarpOutcome O;
      O.R = Sim.run();
      O.Checksum = Sim.memoryChecksum();
      O.Ran = true;
      Outcomes.push_back(std::move(O));
      if (!Outcomes.back().R.ok())
        break;
    }
    return reduceInOrder(Outcomes, Config);
  }

  std::vector<WarpOutcome> Outcomes(Warps);
  // Index of the lowest failing warp seen so far: warps above it cannot
  // contribute to the result (the reduction stops there), so they may be
  // skipped — every warp below it still runs.
  std::atomic<unsigned> FirstFailure{Warps};
  std::mutex InitMutex;
  parallelFor(Warps, [&](size_t Idx) {
    const unsigned W = static_cast<unsigned>(Idx);
    if (W > FirstFailure.load(std::memory_order_acquire))
      return;
    WarpSimulator Sim(M, Kernel, gridWarpConfig(Config, W));
    if (InitMemory) {
      // Serialized so callers may mutate captured state without locking.
      std::lock_guard<std::mutex> Lock(InitMutex);
      InitMemory(Sim);
    }
    WarpOutcome &O = Outcomes[W];
    O.R = Sim.run();
    O.Checksum = Sim.memoryChecksum();
    O.Ran = true;
    if (!O.R.ok()) {
      unsigned Expected = FirstFailure.load(std::memory_order_relaxed);
      while (W < Expected && !FirstFailure.compare_exchange_weak(
                                 Expected, W, std::memory_order_release))
        ;
    }
  });
  // Drop the slots past the first failure before the ordered reduction so
  // the assert in reduceInOrder only sees warps that must have run.
  const unsigned Fail = FirstFailure.load();
  if (Fail < Warps)
    Outcomes.resize(Fail + 1);
  return reduceInOrder(Outcomes, Config);
}
