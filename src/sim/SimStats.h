//===- SimStats.h - Execution metrics --------------------------*- C++ -*-===//
///
/// \file
/// Metrics the evaluation section reports: SIMT efficiency (latency-
/// weighted average fraction of active threads per issued instruction,
/// matching nvprof's definition over full warps), total cycles, issue
/// slots, and per-block profiles used by the cost heuristics.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SIM_SIMSTATS_H
#define SIMTSR_SIM_SIMSTATS_H

#include <cstdint>
#include <map>
#include <string>

namespace simtsr {

struct BlockProfile {
  uint64_t Issues = 0;       ///< Instruction groups issued from this block.
  uint64_t ActiveThreads = 0; ///< Sum of group sizes.
  uint64_t Cycles = 0;       ///< Latency-weighted issue time.
};

/// Runtime behaviour of one conditional branch (keyed by its block).
struct BranchProfile {
  uint64_t Executions = 0; ///< Issue groups that executed the branch.
  uint64_t Divergent = 0;  ///< Groups whose lanes took both targets.

  double divergenceRate() const {
    return Executions == 0
               ? 0.0
               : static_cast<double>(Divergent) /
                     static_cast<double>(Executions);
  }
};

struct SimStats {
  uint64_t IssueSlots = 0;     ///< Total instruction groups issued.
  uint64_t Cycles = 0;         ///< Sum of issued latencies.
  uint64_t ActiveLatency = 0;  ///< Sum of (group size * latency).
  uint64_t ActiveThreads = 0;  ///< Sum of group sizes (unweighted).
  uint64_t BarrierWaits = 0;   ///< Wait/SoftWait executions.
  uint64_t BarrierYields = 0;  ///< Forward-progress yields that released
                               ///< lanes (YieldOnDeadlock mode).
  /// Progress-model accounting (docs/PROGRESS.md): picks where the model
  /// excluded at least one ready group (hsa/obe), and picks the bounded
  /// model forced to serve a lane that hit its fairness bound.
  uint64_t ProgressRestrictedPicks = 0;
  uint64_t ProgressForcedPicks = 0;
  /// Memory-coalescing accounting (Section 4.5 weighs "memory access
  /// patterns"): each memory issue is broken into 32-word segments; a
  /// fully coalesced full-warp access needs one transaction.
  uint64_t MemIssues = 0;          ///< Load/store/atomic issue groups.
  uint64_t MemTransactions = 0;    ///< Distinct 32-word segments touched.
  uint64_t MemMinTransactions = 0; ///< ceil(active / wordsPerSegment).
  unsigned WarpSize = 32;

  /// Per (function name, block name) execution profile.
  std::map<std::pair<std::string, std::string>, BlockProfile> Blocks;
  /// Per (function name, block name) conditional-branch behaviour; the
  /// profile-guided detector uses it to skip branches that never diverge
  /// at run time (static divergence analysis cannot tell).
  std::map<std::pair<std::string, std::string>, BranchProfile> Branches;

  /// Latency-weighted SIMT efficiency in [0, 1].
  double simtEfficiency() const {
    const double Denominator =
        static_cast<double>(Cycles) * static_cast<double>(WarpSize);
    return Denominator == 0.0
               ? 1.0
               : static_cast<double>(ActiveLatency) / Denominator;
  }

  /// Fraction of the minimum transaction count actually achieved, in
  /// (0, 1]; 1.0 means perfectly coalesced (or no memory traffic).
  double coalescingEfficiency() const {
    return MemTransactions == 0
               ? 1.0
               : static_cast<double>(MemMinTransactions) /
                     static_cast<double>(MemTransactions);
  }

  /// Unweighted SIMT efficiency (per issue slot) in [0, 1].
  double issueEfficiency() const {
    const double Denominator =
        static_cast<double>(IssueSlots) * static_cast<double>(WarpSize);
    return Denominator == 0.0
               ? 1.0
               : static_cast<double>(ActiveThreads) / Denominator;
  }
};

} // namespace simtsr

#endif // SIMTSR_SIM_SIMSTATS_H
