//===- Warp.h - SIMT warp interpreter --------------------------*- C++ -*-===//
///
/// \file
/// Functional + timing-light simulator of one warp executing a kernel under
/// Volta-style independent thread scheduling. Each thread has its own PC
/// and call stack; every step the scheduler picks a group of ready threads
/// sharing a PC and issues one instruction for all of them. Convergence is
/// shaped entirely by the barrier instructions in the program plus the
/// scheduling policy, which is exactly the degree of freedom the paper's
/// compiler transformations exploit.
///
/// The default MaxConvergence policy models Volta's convergence optimizer:
/// it always issues the largest same-PC group. Threads in different call
/// frames of the same function converge (grouping keys on function/block/
/// instruction, not the stack), which is what makes the common-function-
/// call pattern of Figure 2(c) work.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SIM_WARP_H
#define SIMTSR_SIM_WARP_H

#include "ir/Module.h"
#include "observe/Trace.h"
#include "sim/BarrierUnit.h"
#include "sim/LatencyModel.h"
#include "sim/SimStats.h"
#include "support/Rng.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace simtsr {

/// Result of verifying a module once for a whole launch. runGrid and the
/// differential oracle verify once per (module, grid/sweep) and hand the
/// result to every WarpSimulator via LaunchConfig::Verified instead of
/// paying a full verifyModule() per warp.
struct LaunchVerification {
  const Module *M = nullptr;
  /// Pre-formatted "invalid IR: ..." diagnostics; empty means verified OK.
  std::vector<std::string> Errors;
};

/// Verifies \p M and formats the diagnostics exactly as WarpSimulator's
/// pre-run validation reports them (first three plus a "+N more" line).
LaunchVerification verifyLaunchModule(const Module &M);

enum class SchedulerPolicy {
  MaxConvergence, ///< Largest same-PC group first (Volta-like). Default.
  MinPC,          ///< Earliest program point first (stack-machine-like).
  RoundRobin,     ///< Rotate the preferred lane each issue.
};

/// Forward-progress guarantee the scheduler honours (docs/PROGRESS.md).
/// Every model is instantiated as its *weakest conforming scheduler*: the
/// simulator serves exactly what the guarantee forces it to serve and
/// adversarially starves everything else, so a kernel that finishes under
/// a model is proven to need no more than that model's guarantee.
enum class ProgressModel {
  Fair,    ///< Every ready group is eventually served (legacy behaviour).
  HSA,     ///< Only the oldest non-exited lane's group is guaranteed.
  OBE,     ///< Occupancy-bound: only a bounded resident lane set runs.
  Bounded, ///< Any ready lane is served within K picks (K = Param).
};

/// A progress model plus its parameter. Param meaning:
///  - OBE: resident slots (0 = max(1, warpSize / 2), resolved at launch);
///  - Bounded: the fairness bound K (0 = 4);
///  - Fair/HSA: unused, must stay 0 so specs compare by value.
struct ProgressSpec {
  ProgressModel Model = ProgressModel::Fair;
  unsigned Param = 0;

  bool operator==(const ProgressSpec &O) const {
    return Model == O.Model && Param == O.Param;
  }
  bool operator!=(const ProgressSpec &O) const { return !(*this == O); }
  bool isFair() const { return Model == ProgressModel::Fair; }
};

/// \returns a stable lowercase name ("fair", "hsa", "obe", "bounded").
const char *getProgressModelName(ProgressModel M);

/// Canonical spelling of \p S: "fair", "hsa", "obe", "obe:<slots>",
/// "bounded:<K>" (an unset bounded Param renders as the default
/// "bounded:4"). parseProgressSpec accepts everything this produces.
std::string formatProgressSpec(const ProgressSpec &S);

/// Parses "fair" | "hsa" | "obe"[":<slots>"] | "bounded"[":<K>"] into
/// \p Out. \returns false (leaving \p Out untouched) on unknown names,
/// malformed parameters, or a parameter on fair/hsa.
bool parseProgressSpec(const std::string &Name, ProgressSpec &Out);

struct LaunchConfig {
  unsigned WarpSize = 32;
  uint64_t Seed = 1;
  SchedulerPolicy Policy = SchedulerPolicy::MaxConvergence;
  /// Release a blocked warp instead of reporting deadlock (models the
  /// hardware forward-progress guarantee). Off in tests so barrier-
  /// placement bugs surface as errors.
  bool YieldOnDeadlock = false;
  /// Forward-progress model the scheduler honours. The default fair model
  /// is bit-identical to the pre-progress-axis simulator on every kernel;
  /// weaker models restrict which ready groups may issue and report
  /// Status::ProgressLivelock when the guarantee cannot unblock the warp.
  ProgressSpec Progress;
  uint64_t MaxIssueSlots = 200ull * 1000 * 1000;
  /// Wall-clock watchdog complementing MaxIssueSlots (a run can be slow
  /// without being issue-bound, e.g. pathological profile maps). 0 disables.
  uint64_t MaxWallMillis = 0;
  /// Trap when any thread's call stack exceeds this depth (the IR verifier
  /// cannot rule out unbounded recursion).
  unsigned MaxCallDepth = 512;
  LatencyModel Latency = LatencyModel::computeBound();
  /// Broadcast to every thread's parameter registers.
  std::vector<int64_t> KernelArgs;
  /// Collect the per-block profile (small map overhead per issue).
  bool ProfileBlocks = false;
  /// Optional shared verification for the launched module. When set and it
  /// matches the module, the simulator reuses it instead of re-running
  /// verifyModule() — the per-warp win that makes multi-warp grids cheap.
  /// The pointee must outlive the run.
  const LaunchVerification *Verified = nullptr;
  /// Stream every scheduler pick and barrier transition into this sink
  /// (docs/OBSERVABILITY.md). The pointee must outlive the run and is used
  /// from the running warp's thread — runGrid clears it for its warps
  /// because parallel warps would interleave on one sink.
  observe::TraceSink *Trace = nullptr;
  /// Fold the event stream into RunResult::TraceDigest (works under
  /// parallel grids, unlike an external sink). Tracing costs one branch
  /// per issue when both this and Trace are off.
  bool CollectTraceDigest = false;
};

struct RunResult {
  enum class Status {
    Finished,  ///< All threads exited.
    Deadlock,  ///< Live threads blocked, nothing releasable.
    Trap,      ///< Runtime fault (bad memory access, barrier misuse, ...).
    IssueLimit,///< MaxIssueSlots exhausted (livelock guard).
    Timeout,   ///< MaxWallMillis exceeded (wall-clock watchdog).
    Malformed, ///< Pre-run validation rejected the launch or the IR.
    ProgressLivelock, ///< The progress model's guarantee cannot unblock
                      ///< the warp while fairer scheduling could.
  };
  Status St = Status::Finished;
  /// Context for any non-Finished status: the trap message, a deadlock
  /// description, limit details, or validation diagnostics.
  std::string TrapMessage;
  SimStats Stats;
  /// Stable 64-bit digest of the run's event stream; 0 unless
  /// LaunchConfig::CollectTraceDigest was set.
  uint64_t TraceDigest = 0;

  bool ok() const { return St == Status::Finished; }
};

/// \returns a stable lowercase name for \p S ("finished", "deadlock", ...).
const char *getRunStatusName(RunResult::Status S);

class WarpSimulator {
public:
  /// \p Kernel must belong to \p M and take config.KernelArgs.size()
  /// parameters; violations are reported by run() as Status::Malformed
  /// rather than asserted, so untrusted launches are safe in release builds.
  WarpSimulator(const Module &M, const Function *Kernel, LaunchConfig Config);

  /// Pre-launch global-memory initialization. \returns false (and makes the
  /// next run() report Malformed) when \p Addr is out of bounds.
  bool setMemory(uint64_t Addr, int64_t Value);
  const std::vector<int64_t> &memory() const { return GlobalMemory; }

  /// FNV-1a hash over global memory — the semantic-transparency checksum.
  uint64_t memoryChecksum() const;

  /// Optional per-issue trace hook: (function, block, instIndex, lanes).
  using TraceFn = std::function<void(const Function &, const BasicBlock &,
                                     size_t, LaneMask)>;
  void setTracer(TraceFn Fn) { Tracer = std::move(Fn); }

  /// Runs to completion (all threads exited) or failure.
  RunResult run();

private:
  /// Test-only seam (tests/sim/ForwardProgressTest.cpp): lets a test force
  /// thread states the instruction set cannot reach, to cover the
  /// defensive "yield released nothing" trap in the run loop.
  friend struct WarpSimulatorTestPeer;
  struct Frame {
    const Function *F;
    unsigned FOrd;    ///< funcOrder(F), cached at frame creation.
    unsigned Block;   ///< Block number within F.
    size_t Index;     ///< Next instruction to execute.
    unsigned RetDst;  ///< Caller register receiving the return value.
    std::vector<int64_t> Regs;
  };

  enum class ThreadStatus { Ready, Waiting, Exited };

  /// WaitingOn values: a barrier id, or WaitingOnWarpSync.
  static constexpr int WaitingOnNothing = -1;
  static constexpr int WaitingOnWarpSync = -2;

  struct Thread {
    std::vector<Frame> Stack;
    ThreadStatus Status = ThreadStatus::Ready;
    int WaitingOn = WaitingOnNothing;
    Rng Rand;
  };

  struct Pc {
    const Function *F;
    unsigned FOrd; ///< Function's rank in name order; see funcOrder().
    unsigned Block;
    size_t Index;
    bool operator==(const Pc &O) const {
      return F == O.F && Block == O.Block && Index == O.Index;
    }
    /// Name-rank comparison: identical ordering to comparing F->name()
    /// (ranks are assigned in sorted-name order) without the per-issue
    /// string compares.
    bool operator<(const Pc &O) const {
      if (FOrd != O.FOrd)
        return FOrd < O.FOrd;
      if (Block != O.Block)
        return Block < O.Block;
      return Index < O.Index;
    }
  };

  /// One schedulable group: the ready threads sharing a PC. ReadyGroups is
  /// kept sorted by Pc and updated incrementally (only lanes whose PC or
  /// status changed are touched) instead of being rebuilt and re-sorted
  /// every issue slot.
  struct Group {
    Pc Where;
    LaneMask Lanes;
  };

  Pc pcOf(const Thread &T) const;
  /// Runs the scheduling policy over the ready groups whose lanes
  /// intersect \p Eligible (the progress model's lane filter; ~0 under
  /// fair). \returns the chosen group's eligible lanes in \p ChosenLanes,
  /// or a null \p ChosenPc when no group has an eligible lane.
  void pickReadyGroup(LaneMask Eligible, const Pc *&ChosenPc,
                      LaneMask &ChosenLanes);
  /// Deterministic function ordinal (rank in name order), cached per frame
  /// so scheduler comparisons never touch strings.
  unsigned funcOrder(const Function *F) const;
  /// Folds DirtyLanes into ReadyGroups: removes dirty lanes everywhere,
  /// then re-inserts the ones still Ready at their current PC.
  void updateReadyGroups();
  /// Converts the dense per-block profile counters into the string-keyed
  /// SimStats maps once, at the end of a run.
  void finalizeProfile();
  /// Pre-run validation of launch configuration and module well-formedness;
  /// appends diagnostics to \p Errors. \returns true when the run may start.
  bool validateLaunch(std::vector<std::string> &Errors) const;
  /// Describes why the warp cannot make progress (barrier and warpsync
  /// state) for Deadlock diagnostics.
  std::string describeBlockedThreads() const;
  /// Evaluating a malformed or out-of-range operand traps and yields 0.
  int64_t eval(const Thread &T, const Operand &O);
  void writeReg(Thread &T, unsigned Reg, int64_t V);
  void releaseLanes(LaneMask Lanes);
  /// Releases warpsync waiters once every live thread has arrived.
  /// \returns the released lanes (for tracing).
  LaneMask checkWarpSyncRelease();
  /// Stamps slot/cycle onto \p E and forwards it to the configured sink
  /// and/or digester. Call only when Tracing.
  void traceEvent(observe::TraceEvent E);
  /// Barrier-event convenience used by execute(); no-op unless Tracing.
  void traceBarrier(observe::TraceEventKind Kind, unsigned BarrierId,
                    LaneMask Lanes, LaneMask Released);
  /// Executes one instruction for all lanes in \p Lanes (same PC).
  /// \returns false when a trap occurred (Result holds the message).
  bool execute(const Instruction &I, LaneMask Lanes);
  void trap(std::string Message);
  void advance(Thread &T) { ++T.Stack.back().Index; }
  void jumpTo(Thread &T, const BasicBlock *Target);
  void exitThread(unsigned Lane);

  const Module &M;
  const Function *Kernel;
  LaunchConfig Config;
  std::vector<Thread> Threads;
  BarrierUnit Barriers;
  std::vector<int64_t> GlobalMemory;
  SimStats Stats;
  RunResult Result;
  bool Trapped = false;
  /// Module functions in name order; index = ordinal used by Pc::FOrd.
  std::vector<const Function *> FuncsByOrder;
  std::map<const Function *, unsigned> FuncOrder;
  /// Ready threads grouped by PC, sorted by Pc (incrementally maintained).
  std::vector<Group> ReadyGroups;
  /// Lanes whose PC or status changed since the last updateReadyGroups().
  LaneMask DirtyLanes = 0;
  unsigned LiveThreads = 0;
  /// Dense per-(function ordinal, block number) profiling storage, folded
  /// into Stats.Blocks/Stats.Branches by finalizeProfile(). Indexing:
  /// ProfileBase[FOrd] + block number.
  std::vector<unsigned> ProfileBase;
  std::vector<BlockProfile> BlockProf;
  std::vector<BranchProfile> BranchProf;
  /// Construction/setMemory problems surfaced by run() as Malformed.
  std::vector<std::string> PrelaunchErrors;
  unsigned RoundRobinNext = 0;
  /// OBE model: the currently resident lanes (only they may issue). A
  /// resident's exit promotes the lowest-id non-exited non-resident lane.
  LaneMask Resident = 0;
  /// Bounded model: picks each ready lane has sat out since it last
  /// issued; a lane reaching the bound K forces its group to issue.
  std::vector<uint32_t> LaneWaits;
  TraceFn Tracer;
  /// True when any event consumer is attached (Config.Trace or
  /// Config.CollectTraceDigest) — the single per-issue branch that makes
  /// tracing zero-cost when disabled.
  bool Tracing = false;
  observe::TraceDigester Digest;
};

} // namespace simtsr

#endif // SIMTSR_SIM_WARP_H
