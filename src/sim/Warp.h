//===- Warp.h - SIMT warp interpreter --------------------------*- C++ -*-===//
///
/// \file
/// Functional + timing-light simulator of one warp executing a kernel under
/// Volta-style independent thread scheduling. Each thread has its own PC
/// and call stack; every step the scheduler picks a group of ready threads
/// sharing a PC and issues one instruction for all of them. Convergence is
/// shaped entirely by the barrier instructions in the program plus the
/// scheduling policy, which is exactly the degree of freedom the paper's
/// compiler transformations exploit.
///
/// The default MaxConvergence policy models Volta's convergence optimizer:
/// it always issues the largest same-PC group. Threads in different call
/// frames of the same function converge (grouping keys on function/block/
/// instruction, not the stack), which is what makes the common-function-
/// call pattern of Figure 2(c) work.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SIM_WARP_H
#define SIMTSR_SIM_WARP_H

#include "ir/Module.h"
#include "sim/BarrierUnit.h"
#include "sim/LatencyModel.h"
#include "sim/SimStats.h"
#include "support/Rng.h"

#include <functional>
#include <string>
#include <vector>

namespace simtsr {

enum class SchedulerPolicy {
  MaxConvergence, ///< Largest same-PC group first (Volta-like). Default.
  MinPC,          ///< Earliest program point first (stack-machine-like).
  RoundRobin,     ///< Rotate the preferred lane each issue.
};

struct LaunchConfig {
  unsigned WarpSize = 32;
  uint64_t Seed = 1;
  SchedulerPolicy Policy = SchedulerPolicy::MaxConvergence;
  /// Release a blocked warp instead of reporting deadlock (models the
  /// hardware forward-progress guarantee). Off in tests so barrier-
  /// placement bugs surface as errors.
  bool YieldOnDeadlock = false;
  uint64_t MaxIssueSlots = 200ull * 1000 * 1000;
  /// Wall-clock watchdog complementing MaxIssueSlots (a run can be slow
  /// without being issue-bound, e.g. pathological profile maps). 0 disables.
  uint64_t MaxWallMillis = 0;
  /// Trap when any thread's call stack exceeds this depth (the IR verifier
  /// cannot rule out unbounded recursion).
  unsigned MaxCallDepth = 512;
  LatencyModel Latency = LatencyModel::computeBound();
  /// Broadcast to every thread's parameter registers.
  std::vector<int64_t> KernelArgs;
  /// Collect the per-block profile (small map overhead per issue).
  bool ProfileBlocks = false;
};

struct RunResult {
  enum class Status {
    Finished,  ///< All threads exited.
    Deadlock,  ///< Live threads blocked, nothing releasable.
    Trap,      ///< Runtime fault (bad memory access, barrier misuse, ...).
    IssueLimit,///< MaxIssueSlots exhausted (livelock guard).
    Timeout,   ///< MaxWallMillis exceeded (wall-clock watchdog).
    Malformed, ///< Pre-run validation rejected the launch or the IR.
  };
  Status St = Status::Finished;
  /// Context for any non-Finished status: the trap message, a deadlock
  /// description, limit details, or validation diagnostics.
  std::string TrapMessage;
  SimStats Stats;

  bool ok() const { return St == Status::Finished; }
};

/// \returns a stable lowercase name for \p S ("finished", "deadlock", ...).
const char *getRunStatusName(RunResult::Status S);

class WarpSimulator {
public:
  /// \p Kernel must belong to \p M and take config.KernelArgs.size()
  /// parameters; violations are reported by run() as Status::Malformed
  /// rather than asserted, so untrusted launches are safe in release builds.
  WarpSimulator(const Module &M, const Function *Kernel, LaunchConfig Config);

  /// Pre-launch global-memory initialization. \returns false (and makes the
  /// next run() report Malformed) when \p Addr is out of bounds.
  bool setMemory(uint64_t Addr, int64_t Value);
  const std::vector<int64_t> &memory() const { return GlobalMemory; }

  /// FNV-1a hash over global memory — the semantic-transparency checksum.
  uint64_t memoryChecksum() const;

  /// Optional per-issue trace hook: (function, block, instIndex, lanes).
  using TraceFn = std::function<void(const Function &, const BasicBlock &,
                                     size_t, LaneMask)>;
  void setTracer(TraceFn Fn) { Tracer = std::move(Fn); }

  /// Runs to completion (all threads exited) or failure.
  RunResult run();

private:
  struct Frame {
    const Function *F;
    unsigned Block;   ///< Block number within F.
    size_t Index;     ///< Next instruction to execute.
    unsigned RetDst;  ///< Caller register receiving the return value.
    std::vector<int64_t> Regs;
  };

  enum class ThreadStatus { Ready, Waiting, Exited };

  /// WaitingOn values: a barrier id, or WaitingOnWarpSync.
  static constexpr int WaitingOnNothing = -1;
  static constexpr int WaitingOnWarpSync = -2;

  struct Thread {
    std::vector<Frame> Stack;
    ThreadStatus Status = ThreadStatus::Ready;
    int WaitingOn = WaitingOnNothing;
    Rng Rand;
  };

  struct Pc {
    const Function *F;
    unsigned Block;
    size_t Index;
    bool operator==(const Pc &O) const {
      return F == O.F && Block == O.Block && Index == O.Index;
    }
    bool operator<(const Pc &O) const {
      if (F != O.F)
        return F->name() < O.F->name();
      if (Block != O.Block)
        return Block < O.Block;
      return Index < O.Index;
    }
  };

  Pc pcOf(const Thread &T) const;
  /// Pre-run validation of launch configuration and module well-formedness;
  /// appends diagnostics to \p Errors. \returns true when the run may start.
  bool validateLaunch(std::vector<std::string> &Errors) const;
  /// Describes why the warp cannot make progress (barrier and warpsync
  /// state) for Deadlock diagnostics.
  std::string describeBlockedThreads() const;
  /// Evaluating a malformed or out-of-range operand traps and yields 0.
  int64_t eval(const Thread &T, const Operand &O);
  void writeReg(Thread &T, unsigned Reg, int64_t V);
  void releaseLanes(LaneMask Lanes);
  /// Releases warpsync waiters once every live thread has arrived.
  void checkWarpSyncRelease();
  /// Executes one instruction for all lanes in \p Lanes (same PC).
  /// \returns false when a trap occurred (Result holds the message).
  bool execute(const Instruction &I, LaneMask Lanes);
  void trap(std::string Message);
  void advance(Thread &T) { ++T.Stack.back().Index; }
  void jumpTo(Thread &T, const BasicBlock *Target);
  void exitThread(unsigned Lane);

  const Module &M;
  const Function *Kernel;
  LaunchConfig Config;
  std::vector<Thread> Threads;
  BarrierUnit Barriers;
  std::vector<int64_t> GlobalMemory;
  SimStats Stats;
  RunResult Result;
  bool Trapped = false;
  /// Construction/setMemory problems surfaced by run() as Malformed.
  std::vector<std::string> PrelaunchErrors;
  unsigned RoundRobinNext = 0;
  TraceFn Tracer;
};

} // namespace simtsr

#endif // SIMTSR_SIM_WARP_H
