//===- BarrierUnit.h - Convergence-barrier state ---------------*- C++ -*-===//
///
/// \file
/// Warp-level convergence-barrier registers in the style of Volta's
/// BSSY/BSYNC/BREAK. Each barrier tracks a participant mask (threads that
/// joined and have not yet been released or cancelled) and a waiter mask
/// (threads currently blocked at a wait).
///
/// Release rules:
///  * WaitBarrier: release when every participant is waiting
///    (Participants subset-of Waiters). Released threads leave the
///    participant set — a thread must RejoinBarrier to wait again.
///  * SoftWait(threshold): release when
///    |Waiters| >= min(threshold, |Participants|). Released threads REMAIN
///    participants; membership is managed by the region's entry join and
///    exit cancels (see DESIGN.md, soft-barrier deviation note).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SIM_BARRIERUNIT_H
#define SIMTSR_SIM_BARRIERUNIT_H

#include "ir/Opcode.h"

#include <cstdint>
#include <string>
#include <vector>

namespace simtsr {

/// Lane masks cover warps of up to 64 threads.
using LaneMask = uint64_t;

/// Misuse of the barrier unit (out-of-range ids, classic/soft wait mixing)
/// is reported through hasError()/takeError() rather than asserted, so the
/// simulator can surface it as a recoverable Trap even in release builds.
/// A mutating operation that fails leaves the barrier state unchanged and
/// returns 0 (no lanes released).
class BarrierUnit {
public:
  BarrierUnit();

  /// BSSY: *writes* the participant set of \p Barrier with \p Lanes, like
  /// Volta's BSSY writes the barrier register with the arriving convergent
  /// group. Overwriting can shrink the set and thereby satisfy a pending
  /// release. \returns lanes released as a consequence.
  LaneMask join(unsigned Barrier, LaneMask Lanes);

  /// BREAK: removes \p Lanes from the participant set. \returns the lanes
  /// released as a consequence (waiters whose release condition now holds).
  LaneMask cancel(unsigned Barrier, LaneMask Lanes);

  /// BSYNC arrival: marks \p Lanes waiting (classic semantics). \returns
  /// lanes released now (possibly including \p Lanes), or 0 if they block.
  LaneMask arriveWait(unsigned Barrier, LaneMask Lanes);

  /// Soft arrival: marks \p Lanes waiting with \p Threshold. \returns lanes
  /// released now, or 0. The smallest threshold among current waiters wins.
  LaneMask arriveSoftWait(unsigned Barrier, LaneMask Lanes,
                          uint64_t Threshold);

  /// Removes exited \p Lanes from every mask (hardware clears barrier
  /// membership on thread exit). \returns lanes released as a consequence,
  /// via OR over all barriers.
  LaneMask threadExit(LaneMask Lanes);

  /// Forward-progress yield: force-release the waiters of the barrier with
  /// the most waiters. \returns the released lanes (0 if nothing waits).
  LaneMask yield();

  /// Accessors tolerate out-of-range ids and return 0 (the pre-run verifier
  /// rejects such IR; these are queried from reporting paths too).
  LaneMask participants(unsigned Barrier) const;
  LaneMask waiters(unsigned Barrier) const;
  /// Number of threads currently waiting on \p Barrier (ArrivedCount).
  unsigned arrivedCount(unsigned Barrier) const;

  /// True if any thread is blocked on any barrier.
  bool anyWaiters() const;

  /// True when a preceding operation was rejected as misuse.
  bool hasError() const { return !LastError.empty(); }
  /// \returns the diagnostic for the first rejected operation and clears it.
  std::string takeError();

  /// Human-readable dump of every barrier with live state; used to build
  /// deadlock diagnostics.
  std::string describeState() const;

private:
  struct Barrier {
    LaneMask Participants = 0;
    LaneMask Waiters = 0;
    bool Soft = false;          ///< Current waiters use soft semantics.
    uint64_t MinThreshold = ~0ull;
  };

  /// Applies the release rule for \p B; clears released state and
  /// \returns the released lanes (0 when the condition does not hold).
  LaneMask tryRelease(Barrier &B);

  /// Records the first misuse diagnostic; later ones are dropped.
  void fail(std::string Message);
  /// \returns true when \p BarrierId is valid; records an error otherwise.
  bool checkId(unsigned BarrierId, const char *Op);

  std::vector<Barrier> Barriers;
  std::string LastError;
};

} // namespace simtsr

#endif // SIMTSR_SIM_BARRIERUNIT_H
