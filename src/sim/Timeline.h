//===- Timeline.h - ASCII execution timelines ------------------*- C++ -*-===//
///
/// \file
/// Renders warp executions as Figure 1 / Figure 3(b)-style diagrams: time
/// flows downward, one column per thread, and each row shows which lanes
/// issued together and from which block. Built on the simulator's trace
/// hook; used by the figure1 example and handy when debugging barrier
/// placements.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SIM_TIMELINE_H
#define SIMTSR_SIM_TIMELINE_H

#include "sim/Warp.h"

#include <string>
#include <vector>

namespace simtsr {

class Timeline {
public:
  /// \p WarpSize columns; block names are shortened to one letter chosen
  /// on first appearance (legend available afterwards).
  explicit Timeline(unsigned WarpSize) : WarpSize(WarpSize) {}

  /// Installs the recording hook on \p Sim. Record every issue; rows are
  /// merged later during rendering.
  void attach(WarpSimulator &Sim);

  /// Renders the recorded execution: one row per issue group (optionally
  /// merging consecutive issues from the same block into one row), lanes
  /// shown as the block's legend letter or '.' when idle.
  std::string render(bool MergeSameBlockRuns = true, size_t MaxRows = 80) const;

  /// Legend: letter -> "function.block".
  std::string legend() const;

private:
  struct Issue {
    std::string Where; ///< function.block
    LaneMask Lanes;
  };

  char letterFor(const std::string &Where) const;

  unsigned WarpSize;
  std::vector<Issue> Issues;
  mutable std::vector<std::string> Order; ///< Where-keys by first use.
};

} // namespace simtsr

#endif // SIMTSR_SIM_TIMELINE_H
