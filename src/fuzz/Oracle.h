//===- Oracle.h - Differential pipeline/scheduler oracle -------*- C++ -*-===//
///
/// \file
/// The torture harness's correctness oracle. A `.sir` module that obeys the
/// KernelGen invariants (trap-free, race-free, terminating) must produce
/// the identical global-memory checksum and a Finished status under every
/// synchronization pipeline and every scheduler policy: barrier placement
/// may only reshape the schedule, never the result. The oracle runs the
/// full cross product — {no-op, PDOM-only, SR, SR+interprocedural,
/// soft-barrier, SR+interprocedural+realloc} x {MaxConvergence, MinPC,
/// RoundRobin} — and reports the first divergence.
///
/// Fault injection deliberately miscompiles one configuration after the
/// pipeline and its discipline checks ran (modelling a broken late pass),
/// so harness tests can prove the oracle actually catches bugs.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_FUZZ_ORACLE_H
#define SIMTSR_FUZZ_ORACLE_H

#include "sim/Warp.h"

#include <cstdint>
#include <string>
#include <vector>

namespace simtsr {

enum class FaultInjection {
  None,
  /// Swap every conditional branch's then/else targets in the "sr" config
  /// after verification — a silent miscompile surfacing as a checksum
  /// mismatch (loops stay terminating: trip counters only grow).
  SwapBranchTargets,
  /// Delete every CancelBarrier in the "sr" config after verification —
  /// threads leave prediction regions still joined, the classic Figure 5(a)
  /// cross-barrier deadlock.
  DropCancels,
};

enum class FailureKind {
  None,
  ParseError,     ///< Input text did not parse.
  InvalidModule,  ///< Input parsed but failed verifyModule().
  Discipline,     ///< Pipeline verifier reported barrier-discipline issues.
  PostPassInvalid,///< Module failed verifyModule() after a pipeline.
  ChecksumMismatch,///< Configs disagree on the final memory checksum.
  Deadlock,       ///< A config deadlocked.
  Trap,           ///< A config trapped at run time.
  IssueLimit,     ///< A config hit the issue-slot livelock guard.
  Timeout,        ///< A config hit the wall-clock watchdog.
  Malformed,      ///< The simulator rejected a launch pre-run.
  LintMismatch,   ///< Static analyzer verdict disagrees with the simulator
                  ///< (OracleOptions::LintCheck): a barrier failure the
                  ///< lint called clean, or a proven deadlock that ran fine.
  ProgressLivelock, ///< A run failed under a weak progress model while its
                    ///< fair counterpart finished (only a verdict when
                    ///< OracleOptions::OnProgressLivelock is Fail; the
                    ///< Classify default records it without failing).
};

/// \returns a stable lowercase name ("checksum-mismatch", "deadlock", ...).
const char *getFailureKindName(FailureKind K);

/// \returns a stable name for \p P ("maxconv", "minpc", "roundrobin").
const char *getPolicyName(SchedulerPolicy P);

struct OracleOptions {
  unsigned WarpSize = 32;
  /// Simulator seed feeding the per-thread `rand` streams. Identical across
  /// configs by construction — it is part of the input, not the schedule.
  uint64_t SimSeed = 1;
  uint64_t MaxIssueSlots = 50ull * 1000 * 1000;
  /// Per-run wall-clock watchdog in milliseconds (0 disables).
  uint64_t MaxWallMillis = 10'000;
  /// Threshold for the soft-barrier config.
  int SoftThreshold = 8;
  FaultInjection Inject = FaultInjection::None;
  /// Collect a trace digest for every run (OracleRun::TraceDigest) so
  /// failure reports and shrunk repros are self-describing. Costs one
  /// branch plus a small hash per issue slot.
  bool CollectTraceDigests = true;
  /// On a checksum mismatch, re-run the failing and reference
  /// (config, policy) pairs with event recorders and append the first
  /// divergent scheduling event to Detail.
  bool ExplainDivergence = true;
  /// Cross-check the static convergence-safety analyzer (src/lint) against
  /// the simulator on every config's post-pipeline module (after fault
  /// injection, so injected barrier bugs are in scope): a dynamic barrier
  /// deadlock/trap on a module the lint called clean — or a lint-proven
  /// deadlock on a module every policy finishes — is a LintMismatch.
  bool LintCheck = false;
  /// Run the six pipeline configurations concurrently on the global thread
  /// pool. The verdict (Kind, Detail, Runs) is bit-identical to the
  /// sequential cross product: every config runs to completion, then the
  /// results are scanned in the sequential order and truncated at the
  /// first failure exactly as the one-at-a-time loop would have stopped.
  bool Parallel = true;
  /// Progress models every (config, policy) pair runs under, in order.
  /// The first entry must be fair: it establishes the baseline the weak
  /// models are classified against, and the reference checksum. The
  /// default single-element list reproduces the legacy cross product
  /// bit for bit. An empty list is treated as {fair}.
  std::vector<ProgressSpec> ProgressModels = {ProgressSpec{}};
  /// What a failure that only happens under a weak model means.
  enum class ProgressVerdict {
    /// Record it in OracleResult::ProgressLivelocks and keep sweeping —
    /// the kernel needs more fairness than the model guarantees, which is
    /// a property of the kernel, not a miscompile.
    Classify,
    /// Promote it to a FailureKind::ProgressLivelock verdict (what the
    /// shrinker targets when minimizing a weak-model-only repro).
    Fail,
  };
  ProgressVerdict OnProgressLivelock = ProgressVerdict::Classify;
};

/// One completed simulation within the cross product.
struct OracleRun {
  std::string Config;
  SchedulerPolicy Policy = SchedulerPolicy::MaxConvergence;
  /// Progress model this run executed under (fair in the legacy sweep).
  ProgressSpec Progress;
  RunResult::Status St = RunResult::Status::Finished;
  uint64_t Checksum = 0;
  /// Stable schedule digest (docs/OBSERVABILITY.md); 0 when
  /// OracleOptions::CollectTraceDigests is off.
  uint64_t TraceDigest = 0;
};

struct OracleResult {
  FailureKind Kind = FailureKind::None;
  /// Human-readable description of the first failure: which config and
  /// policy, and the simulator's or verifier's own diagnostic.
  std::string Detail;
  std::vector<OracleRun> Runs;
  /// One line per linted config (OracleOptions::LintCheck): the static
  /// analyzer's verdict on that config's post-pipeline module, for repro
  /// reports.
  std::vector<std::string> LintLines;
  /// Weak-model divergences classified (not failed) under the Classify
  /// verdict: "config/policy/model: status — diagnostic" per entry. The
  /// kernel demands more fairness than the model guarantees; the compile
  /// is still correct.
  std::vector<std::string> ProgressLivelocks;

  bool ok() const { return Kind == FailureKind::None; }
};

/// Names of the pipeline configurations the oracle exercises, in run order.
/// The first entry is the reference (no synchronization at all).
const std::vector<std::string> &oracleConfigNames();

/// Runs the full differential cross product over \p SirText. Stops at the
/// first failure; Runs holds every simulation completed up to that point.
OracleResult runDifferentialOracle(const std::string &SirText,
                                   const OracleOptions &Opts);

/// Applies \p F to \p M in place. \returns the number of sites changed
/// (exposed for tests; the oracle calls it internally on the "sr" config).
unsigned injectFault(Module &M, FaultInjection F);

/// The progress-model axis a repair certification sweeps: fair first (the
/// baseline), then every weak guarantee the simulator implements (hsa,
/// obe, bounded:4) — the same axis as `simtsr-torture --progress-sweep`.
std::vector<ProgressSpec> certificationProgressModels();

/// Outcome of certifying one repaired module (docs/LINT.md, "Repair"): the
/// full differential cross product, every pipeline configuration under
/// every policy and every certification progress model, with the lint gate
/// armed. A certified repair finished every run with the reference
/// checksum; weak-model-only livelocks are classified, not failed, exactly
/// as the progress sweep treats them.
struct RepairCertification {
  bool Certified = false;
  /// Failure kind and detail of the first divergence when not certified.
  std::string Detail;
  /// Classified weak-model livelocks (fairness demands, not miscompiles).
  std::vector<std::string> ProgressLivelocks;
  /// Simulations completed across the cross product.
  size_t Runs = 0;
};

/// Runs the certification sweep over \p RepairedText. \p Base supplies the
/// launch parameters (warp size, sim seed, limits); the model axis, the
/// livelock verdict and the lint cross-check are forced to the
/// certification contract regardless of what \p Base says.
RepairCertification certifyRepair(const std::string &RepairedText,
                                  const OracleOptions &Base);

} // namespace simtsr

#endif // SIMTSR_FUZZ_ORACLE_H
