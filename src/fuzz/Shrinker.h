//===- Shrinker.h - Failing-module minimization ----------------*- C++ -*-===//
///
/// \file
/// Greedy delta-debugging over `.sir` text: given a module on which the
/// differential oracle reports a failure, repeatedly apply structural
/// reductions (instruction-chunk removal, branch-to-jump conversion,
/// unreachable-block deletion) and keep a candidate only when the oracle
/// still reports the *same* FailureKind on it. The result is a smaller,
/// directly replayable repro; every intermediate candidate is validated by
/// the oracle's own parse/verify front end, so the shrinker cannot wander
/// into ill-formed territory.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_FUZZ_SHRINKER_H
#define SIMTSR_FUZZ_SHRINKER_H

#include "fuzz/Oracle.h"

#include <string>

namespace simtsr {

struct ShrinkOptions {
  /// Oracle configuration; must match the one that produced the failure or
  /// the target kind will not reproduce and nothing shrinks.
  OracleOptions Oracle;
  /// Upper bound on oracle invocations (each attempt re-runs the oracle).
  unsigned MaxAttempts = 800;
  /// Per-candidate simulation budget caps, applied as upper bounds on the
  /// Oracle limits above. Shrinking replays the oracle hundreds of times
  /// and mutations routinely produce livelocks (e.g. removing a loop's
  /// counter increment), so runaway candidates must be cut off quickly.
  uint64_t CandidateMaxIssueSlots = 500'000;
  uint64_t CandidateMaxWallMillis = 500;
};

struct ShrinkResult {
  /// The smallest text found that still fails with the original kind.
  /// Equals the input when nothing could be removed.
  std::string Text;
  FailureKind Kind = FailureKind::None;
  unsigned AttemptsUsed = 0;
  /// Number of accepted (shrinking) steps.
  unsigned StepsAccepted = 0;
};

/// Minimizes \p Text, which must fail the oracle with \p Kind under
/// \p Opts.Oracle. \returns the input unchanged (StepsAccepted == 0) when
/// the failure does not reproduce.
ShrinkResult shrinkFailingModule(const std::string &Text, FailureKind Kind,
                                 const ShrinkOptions &Opts);

} // namespace simtsr

#endif // SIMTSR_FUZZ_SHRINKER_H
