//===- Oracle.cpp - Differential pipeline/scheduler oracle --------------------===//

#include "fuzz/Oracle.h"

#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "lint/ConvergenceLint.h"
#include "support/ThreadPool.h"
#include "transform/BarrierVerifier.h"
#include "transform/PassStage.h"
#include "transform/Pipeline.h"

#include <atomic>

using namespace simtsr;

const char *simtsr::getFailureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:
    return "none";
  case FailureKind::ParseError:
    return "parse-error";
  case FailureKind::InvalidModule:
    return "invalid-module";
  case FailureKind::Discipline:
    return "discipline";
  case FailureKind::PostPassInvalid:
    return "post-pass-invalid";
  case FailureKind::ChecksumMismatch:
    return "checksum-mismatch";
  case FailureKind::Deadlock:
    return "deadlock";
  case FailureKind::Trap:
    return "trap";
  case FailureKind::IssueLimit:
    return "issue-limit";
  case FailureKind::Timeout:
    return "timeout";
  case FailureKind::Malformed:
    return "malformed";
  case FailureKind::LintMismatch:
    return "lint-mismatch";
  case FailureKind::ProgressLivelock:
    return "progress-livelock";
  }
  return "unknown";
}

const char *simtsr::getPolicyName(SchedulerPolicy P) {
  switch (P) {
  case SchedulerPolicy::MaxConvergence:
    return "maxconv";
  case SchedulerPolicy::MinPC:
    return "minpc";
  case SchedulerPolicy::RoundRobin:
    return "roundrobin";
  }
  return "unknown";
}

unsigned simtsr::injectFault(Module &M, FaultInjection F) {
  unsigned Changed = 0;
  for (size_t FI = 0; FI < M.size(); ++FI) {
    for (BasicBlock *BB : *M.function(FI)) {
      switch (F) {
      case FaultInjection::None:
        break;
      case FaultInjection::SwapBranchTargets:
        if (BB->hasTerminator() &&
            BB->terminator().opcode() == Opcode::Br) {
          Instruction &Br = BB->terminator();
          std::swap(Br.operand(1), Br.operand(2));
          ++Changed;
        }
        break;
      case FaultInjection::DropCancels: {
        auto &Insts = BB->instructions();
        for (size_t I = Insts.size(); I-- > 0;)
          if (Insts[I].opcode() == Opcode::CancelBarrier) {
            Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(I));
            ++Changed;
          }
        break;
      }
      }
    }
    M.function(FI)->recomputePreds();
  }
  return Changed;
}

namespace {

struct ConfigSpec {
  std::string Name;
  PipelineSpec Pipe;

  bool hasStage(const char *Stage) const {
    for (const std::string &S : Pipe.Stages)
      if (S == Stage)
        return true;
    return false;
  }
};

std::vector<ConfigSpec> makeConfigs(const OracleOptions &Opts) {
  // The oracle's config axis IS the standard catalog — the trace tool and
  // the golden digest tests run the same catalog of pipelines by name.
  std::vector<ConfigSpec> Specs;
  for (const std::string &Name : standardPipelineNames())
    Specs.push_back({Name, *standardPipelineSpec(Name, Opts.SoftThreshold)});
  return Specs;
}

std::string joinFirst(const std::vector<std::string> &Diags, size_t Max) {
  std::string Out;
  for (size_t I = 0; I < Diags.size() && I < Max; ++I) {
    if (!Out.empty())
      Out += "; ";
    Out += Diags[I];
  }
  if (Diags.size() > Max)
    Out += "; +" + std::to_string(Diags.size() - Max) + " more";
  return Out;
}

FailureKind kindForStatus(RunResult::Status St) {
  switch (St) {
  case RunResult::Status::Finished:
    return FailureKind::None;
  case RunResult::Status::Deadlock:
    return FailureKind::Deadlock;
  case RunResult::Status::Trap:
    return FailureKind::Trap;
  case RunResult::Status::IssueLimit:
    return FailureKind::IssueLimit;
  case RunResult::Status::Timeout:
    return FailureKind::Timeout;
  case RunResult::Status::Malformed:
    return FailureKind::Malformed;
  case RunResult::Status::ProgressLivelock:
    return FailureKind::ProgressLivelock;
  }
  return FailureKind::Trap;
}

/// Weak-model failure statuses that mean "the kernel needs more fairness
/// than the model guarantees", not "the compile is wrong": the weakest
/// conforming scheduler starved it — either outright (ProgressLivelock,
/// Deadlock) or into the issue-slot/wall-clock guards. Traps and checksum
/// mismatches are never classifiable: KernelGen kernels are trap- and
/// race-free, so those stay schedule-independent under any scheduler.
bool isClassifiableUnderWeakModel(RunResult::Status St) {
  return St == RunResult::Status::ProgressLivelock ||
         St == RunResult::Status::Deadlock ||
         St == RunResult::Status::IssueLimit ||
         St == RunResult::Status::Timeout;
}

/// Model axis normalized per the OracleOptions contract: never empty, fair
/// always first (it establishes the baseline and the reference checksum).
std::vector<ProgressSpec> progressModels(const OracleOptions &Opts) {
  std::vector<ProgressSpec> Models = Opts.ProgressModels;
  if (Models.empty() || !Models.front().isFair())
    Models.insert(Models.begin(), ProgressSpec{});
  return Models;
}

/// "config/policy" for fair runs (byte-identical to the legacy labels) and
/// "config/policy/model" once the progress axis is in play.
std::string runLabel(const std::string &Config, const OracleRun &Run) {
  std::string Label = Config + "/" + getPolicyName(Run.Policy);
  if (!Run.Progress.isFair())
    Label += "/" + formatProgressSpec(Run.Progress);
  return Label;
}

constexpr SchedulerPolicy OraclePolicies[] = {SchedulerPolicy::MaxConvergence,
                                              SchedulerPolicy::MinPC,
                                              SchedulerPolicy::RoundRobin};

/// One policy run plus the trap message the verdict may need.
struct PolicyRecord {
  OracleRun Run;
  std::string TrapMessage;
};

/// The static analyzer's verdict on one config's post-pipeline module
/// (OracleOptions::LintCheck).
struct LintVerdict {
  bool Ran = false;
  unsigned Errors = 0;
  unsigned Warnings = 0;
  bool ProvenDeadlock = false;
  /// First few gate-severity messages, for repro reports.
  std::string Summary;

  /// No errors and no warnings: the analyzer vouched for this module.
  bool cleanBill() const { return Ran && !Errors && !Warnings; }
};

/// Everything one pipeline configuration contributes: either a pre-sim
/// stage failure, or the three policy runs. Computed independently per
/// config so the configs can run concurrently; the verdict is derived
/// afterwards by replaying the outcomes in sequential config order.
struct ConfigOutcome {
  FailureKind StageKind = FailureKind::None;
  std::string StageDetail;
  LintVerdict Lint;
  std::vector<PolicyRecord> Runs;
  /// True when the run loop stopped early on a genuine failure — anything
  /// the in-order replay turns into a verdict. Classified weak-model
  /// livelocks do not stop the sweep and do not set this.
  bool Stopped = false;
};

/// Runs one configuration end to end: fresh parse, pipeline, post-pass
/// verification, optional fault injection, then the three policies.
/// \p RefChecksum is the cross-config reference ("noop" under the first
/// policy) when already known; null for the reference config itself,
/// which compares its later policies against its own first run.
ConfigOutcome runOracleConfig(const std::string &SirText,
                              const ConfigSpec &Spec,
                              const OracleOptions &Opts,
                              const uint64_t *RefChecksum) {
  ConfigOutcome Out;
  ParseResult Parsed = parseModule(SirText);
  if (!Parsed.ok()) {
    Out.StageKind = FailureKind::ParseError;
    Out.StageDetail = joinFirst(Parsed.Errors, 3);
    return Out;
  }
  Module &M = *Parsed.M;

  PipelineReport Report = runSyncPipeline(M, Spec.Pipe);
  if (!Report.clean()) {
    Out.StageKind = FailureKind::Discipline;
    Out.StageDetail =
        "config " + Spec.Name + ": " + joinFirst(Report.VerifierDiagnostics, 3);
    return Out;
  }
  auto PostDiags = verifyModule(M);
  if (!PostDiags.empty()) {
    Out.StageKind = FailureKind::PostPassInvalid;
    Out.StageDetail = "config " + Spec.Name + ": " + joinFirst(PostDiags, 3);
    return Out;
  }

  // A broken late pass: miscompile one config after all checks passed.
  if (Opts.Inject != FaultInjection::None && Spec.Name == "sr")
    injectFault(M, Opts.Inject);

  // Static-vs-dynamic cross-check: lint the module the simulator will
  // actually run (i.e. after fault injection, so an injected barrier bug
  // is in scope for both sides). Origin-aware from the pipeline registry,
  // except after realloc where the registry's origins are stale.
  if (Opts.LintCheck) {
    lint::LintOptions LO;
    if (!Spec.hasStage("realloc"))
      LO = lintOptionsFromRegistry(Report.Registry);
    LO.WarpSize = Opts.WarpSize;
    LO.Remarks = false;
    const lint::LintResult LR = lint::runConvergenceLint(M, LO);
    Out.Lint.Ran = true;
    Out.Lint.Errors = LR.count(lint::LintSeverity::Error);
    Out.Lint.Warnings = LR.count(lint::LintSeverity::Warning);
    Out.Lint.ProvenDeadlock = LR.ProvenDeadlock;
    Out.Lint.Summary = joinFirst(LR.gateStrings(), 3);
  }

  // Verify once for the three policy runs (injection may have changed the
  // module, so this happens after it); each simulator reuses the result.
  const LaunchVerification Verification = verifyLaunchModule(M);
  const std::vector<ProgressSpec> Models = progressModels(Opts);
  bool HaveRef = RefChecksum != nullptr;
  uint64_t Ref = RefChecksum ? *RefChecksum : 0;
  for (SchedulerPolicy Policy : OraclePolicies) {
    for (const ProgressSpec &PS : Models) {
      LaunchConfig Config;
      Config.WarpSize = Opts.WarpSize;
      Config.Seed = Opts.SimSeed;
      Config.Policy = Policy;
      Config.Progress = PS;
      Config.MaxIssueSlots = Opts.MaxIssueSlots;
      Config.MaxWallMillis = Opts.MaxWallMillis;
      Config.Verified = &Verification;
      Config.CollectTraceDigest = Opts.CollectTraceDigests;

      WarpSimulator Sim(M, M.functionByName("kernel"), Config);
      RunResult Run = Sim.run();

      PolicyRecord Record;
      Record.Run.Config = Spec.Name;
      Record.Run.Policy = Policy;
      Record.Run.Progress = PS;
      Record.Run.St = Run.St;
      Record.Run.Checksum = Sim.memoryChecksum();
      Record.Run.TraceDigest = Run.TraceDigest;
      Record.TrapMessage = Run.TrapMessage;
      const uint64_t Checksum = Record.Run.Checksum;
      Out.Runs.push_back(std::move(Record));
      // The in-order replay never reads past a config's first genuine
      // failure or checksum divergence (the sequential loop would have
      // stopped there), so later runs of a doomed config — often slow
      // issue-limit or watchdog runs — are skipped, not just discarded.
      // A classified weak-model livelock is not genuine: the sweep keeps
      // going, exactly as the replay keeps reading past its record.
      if (!Run.ok()) {
        if (!PS.isFair() && isClassifiableUnderWeakModel(Run.St) &&
            Opts.OnProgressLivelock ==
                OracleOptions::ProgressVerdict::Classify)
          continue;
        Out.Stopped = true;
        return Out;
      }
      if (!HaveRef) {
        HaveRef = true;
        Ref = Checksum;
      } else if (Checksum != Ref) {
        Out.Stopped = true;
        return Out;
      }
    }
  }
  return Out;
}

/// One repro-report line for a linted config.
std::string lintLine(const std::string &Config, const LintVerdict &V) {
  std::string Line = "config " + Config + ": lint " +
                     std::to_string(V.Errors) + " errors, " +
                     std::to_string(V.Warnings) + " warnings";
  if (V.ProvenDeadlock)
    Line += ", proven-deadlock";
  if (!V.Summary.empty())
    Line += ": " + V.Summary;
  return Line;
}

/// A dynamic failure the static analyzer is expected to have an opinion
/// on: a deadlock, or a trap whose message names a barrier.
bool isBarrierFailure(FailureKind K, const std::string &TrapMessage) {
  if (K == FailureKind::Deadlock)
    return true;
  return K == FailureKind::Trap &&
         TrapMessage.find("barrier") != std::string::npos;
}

/// Scans completed config outcomes in sequential order and produces the
/// verdict the one-at-a-time loop would have produced: Runs accumulate
/// until the first failure, which sets Kind/Detail and stops the scan.
/// With LintCheck on, the scan also cross-checks each verdict against the
/// static analyzer's (rule 1: a dynamic barrier failure on a module the
/// lint called clean; rule 2: a lint-proven deadlock that every policy
/// survives — only meaningful when warps can actually diverge).
OracleResult replayInOrder(const std::vector<ConfigSpec> &Specs,
                           const std::vector<ConfigOutcome> &Outcomes,
                           const OracleOptions &Opts) {
  OracleResult Result;
  bool HaveReference = false;
  uint64_t ReferenceChecksum = 0;
  std::string ReferenceLabel;
  for (size_t I = 0; I < Specs.size(); ++I) {
    const ConfigOutcome &Out = Outcomes[I];
    if (Out.Lint.Ran)
      Result.LintLines.push_back(lintLine(Specs[I].Name, Out.Lint));
    if (Out.StageKind != FailureKind::None) {
      Result.Kind = Out.StageKind;
      Result.Detail = Out.StageDetail;
      return Result;
    }
    for (const PolicyRecord &Record : Out.Runs) {
      const std::string Label = runLabel(Specs[I].Name, Record.Run);
      Result.Runs.push_back(Record.Run);
      if (Record.Run.St != RunResult::Status::Finished) {
        const std::string SimDetail =
            "config " + Label + ": " + getRunStatusName(Record.Run.St) +
            (Record.TrapMessage.empty() ? "" : ": " + Record.TrapMessage);
        if (!Record.Run.Progress.isFair() &&
            isClassifiableUnderWeakModel(Record.Run.St)) {
          if (Opts.OnProgressLivelock ==
              OracleOptions::ProgressVerdict::Classify) {
            // The kernel needs more fairness than the model guarantees —
            // record it and keep sweeping; the compile is still correct.
            Result.ProgressLivelocks.push_back(SimDetail);
            continue;
          }
          // Fail verdict: the weak-model-only failure IS the finding
          // (what the shrinker minimizes into a progress repro).
          Result.Kind = FailureKind::ProgressLivelock;
          Result.Detail = SimDetail;
          return Result;
        }
        const FailureKind K = kindForStatus(Record.Run.St);
        // The lint models fair scheduling, so a classifiable weak-model
        // starvation never contradicts its clean bill — but a barrier
        // *trap* is schedule-independent (the classifiable statuses were
        // handled above), so under any model it impeaches a clean bill.
        const bool LintScope = Record.Run.Progress.isFair() ||
                               !isClassifiableUnderWeakModel(Record.Run.St);
        if (LintScope && isBarrierFailure(K, Record.TrapMessage) &&
            Out.Lint.cleanBill()) {
          Result.Kind = FailureKind::LintMismatch;
          Result.Detail = SimDetail +
                          ", but the static analyzer gave this module a "
                          "clean bill";
          return Result;
        }
        Result.Kind = K;
        Result.Detail = SimDetail;
        return Result;
      }
      if (!HaveReference) {
        HaveReference = true;
        ReferenceChecksum = Record.Run.Checksum;
        ReferenceLabel = Label;
      } else if (Record.Run.Checksum != ReferenceChecksum) {
        Result.Kind = FailureKind::ChecksumMismatch;
        Result.Detail = "config " + Label + ": checksum " +
                        std::to_string(Record.Run.Checksum) + " != " +
                        std::to_string(ReferenceChecksum) + " from " +
                        ReferenceLabel;
        return Result;
      }
    }
  }
  if (Opts.WarpSize > 1) {
    for (size_t I = 0; I < Specs.size(); ++I) {
      if (!Outcomes[I].Lint.Ran || !Outcomes[I].Lint.ProvenDeadlock)
        continue;
      Result.Kind = FailureKind::LintMismatch;
      Result.Detail = "config " + Specs[I].Name +
                      ": lint proved a guaranteed deadlock, but every "
                      "scheduler policy finished cleanly" +
                      (Outcomes[I].Lint.Summary.empty()
                           ? ""
                           : " (" + Outcomes[I].Lint.Summary + ")");
      return Result;
    }
  }
  return Result;
}

/// Event cap for divergence explanation re-runs; large enough for any
/// KernelGen kernel, small enough to bound a pathological repro.
constexpr size_t MaxDivergenceEvents = 1u << 20;

/// Re-runs one (config, policy) pair with an event recorder attached,
/// replicating the oracle's per-config compile (including fault
/// injection). \returns the compiled module — the recorded events point
/// into it, so it must stay alive while they are consumed — or null when
/// any pre-sim stage fails (impossible for pairs that already completed
/// inside the oracle).
std::unique_ptr<Module> recordTrace(const std::string &SirText,
                                    const ConfigSpec &Spec,
                                    const OracleOptions &Opts,
                                    SchedulerPolicy Policy,
                                    const ProgressSpec &Progress,
                                    observe::TraceRecorder &Rec) {
  ParseResult Parsed = parseModule(SirText);
  if (!Parsed.ok())
    return nullptr;
  Module &M = *Parsed.M;
  if (!runSyncPipeline(M, Spec.Pipe).clean())
    return nullptr;
  if (Opts.Inject != FaultInjection::None && Spec.Name == "sr")
    injectFault(M, Opts.Inject);
  LaunchConfig Config;
  Config.WarpSize = Opts.WarpSize;
  Config.Seed = Opts.SimSeed;
  Config.Policy = Policy;
  Config.Progress = Progress;
  Config.MaxIssueSlots = Opts.MaxIssueSlots;
  Config.MaxWallMillis = Opts.MaxWallMillis;
  Config.Trace = &Rec;
  WarpSimulator Sim(M, M.functionByName("kernel"), Config);
  Sim.run();
  return std::move(Parsed.M);
}

/// Appends the first divergent scheduling event to a checksum-mismatch
/// verdict by re-running the failing and reference pairs with recorders.
/// Runs after the parallel/sequential verdict is fixed and is itself
/// deterministic, so it cannot break their bit-identity.
void explainDivergence(const std::string &SirText, const OracleOptions &Opts,
                       OracleResult &Result) {
  if (!Opts.ExplainDivergence || Result.Kind != FailureKind::ChecksumMismatch)
    return;
  if (Result.Runs.size() < 2)
    return;
  const OracleRun &Bad = Result.Runs.back();   // The run that mismatched.
  const OracleRun &Ref = Result.Runs.front();  // Established the reference.
  const std::vector<ConfigSpec> Specs = makeConfigs(Opts);
  auto SpecFor = [&](const std::string &Name) -> const ConfigSpec * {
    for (const ConfigSpec &S : Specs)
      if (S.Name == Name)
        return &S;
    return nullptr;
  };
  const ConfigSpec *BadSpec = SpecFor(Bad.Config);
  const ConfigSpec *RefSpec = SpecFor(Ref.Config);
  if (!BadSpec || !RefSpec)
    return;
  observe::TraceRecorder BadRec(MaxDivergenceEvents);
  observe::TraceRecorder RefRec(MaxDivergenceEvents);
  // The modules must outlive the diff: recorded events reference their
  // function and block names.
  std::unique_ptr<Module> BadM =
      recordTrace(SirText, *BadSpec, Opts, Bad.Policy, Bad.Progress, BadRec);
  std::unique_ptr<Module> RefM =
      recordTrace(SirText, *RefSpec, Opts, Ref.Policy, Ref.Progress, RefRec);
  if (!BadM || !RefM)
    return;
  const observe::TraceDivergence D =
      observe::diffTraces(BadRec.events(), RefRec.events());
  if (D.Diverged) {
    Result.Detail += "; trace diverges at event #" + std::to_string(D.Index) +
                     ": " + D.A + " vs reference " + D.B;
  } else if (BadRec.truncated() || RefRec.truncated()) {
    Result.Detail += "; traces identical within the first " +
                     std::to_string(MaxDivergenceEvents) + " events";
  } else {
    // Same schedule, different checksum: the configs computed different
    // values along identical control flow.
    Result.Detail += "; schedules are identical — the divergence is in "
                     "computed values, not control flow";
  }
}

} // namespace

const std::vector<std::string> &simtsr::oracleConfigNames() {
  // One catalog for the whole repo; see standardPipelineNames().
  return standardPipelineNames();
}

namespace {

OracleResult runOracleVerdict(const std::string &SirText,
                              const OracleOptions &Opts) {
  OracleResult Result;

  // Reject inputs that are broken before any pass touches them, so every
  // later failure is attributable to the pipeline or the simulator.
  {
    ParseResult Parsed = parseModule(SirText);
    if (!Parsed.ok()) {
      Result.Kind = FailureKind::ParseError;
      Result.Detail = joinFirst(Parsed.Errors, 3);
      return Result;
    }
    auto Diags = verifyModule(*Parsed.M);
    if (!Diags.empty()) {
      Result.Kind = FailureKind::InvalidModule;
      Result.Detail = joinFirst(Diags, 3);
      return Result;
    }
    if (!Parsed.M->functionByName("kernel")) {
      Result.Kind = FailureKind::InvalidModule;
      Result.Detail = "no function named 'kernel'";
      return Result;
    }
  }

  // Both modes build per-config outcomes with runOracleConfig and derive
  // the verdict with the same in-order replay, so the parallel and
  // sequential verdicts (including the lint cross-check) are one code
  // path. The first config always runs alone: if it fails, the sequential
  // loop would never have started the others, and its checksum is the
  // reference later configs compare against so each can stop at its own
  // first divergence instead of completing slow doomed runs.
  const std::vector<ConfigSpec> Specs = makeConfigs(Opts);
  std::vector<ConfigOutcome> Outcomes(Specs.size());
  // "Clean" = the run loop swept every (policy, model) pair without a
  // genuine failure. Classified weak-model livelocks leave a config clean;
  // the replay surfaces them as ProgressLivelocks lines, not a verdict.
  const auto IsClean = [](const ConfigOutcome &Out) {
    return Out.StageKind == FailureKind::None && !Out.Stopped;
  };
  Outcomes[0] = runOracleConfig(SirText, Specs[0], Opts, nullptr);
  const ConfigOutcome &First = Outcomes[0];
  if (First.Runs.empty() || !IsClean(First)) {
    // The replay stops inside the first config; the others never run.
    const std::vector<ConfigSpec> Head(Specs.begin(), Specs.begin() + 1);
    Outcomes.resize(1);
    return replayInOrder(Head, Outcomes, Opts);
  }
  const uint64_t Reference = First.Runs.front().Run.Checksum;

  if (Opts.Parallel) {
    // Lowest config index known to have failed. The replay stops at that
    // config, so configs after it that have not started yet can be skipped
    // outright — their outcomes are never read. (Which later configs get
    // skipped may vary with thread timing; the verdict cannot.)
    std::atomic<size_t> FirstBad{Specs.size()};
    parallelFor(Specs.size() - 1, [&](size_t I) {
      const size_t C = I + 1;
      if (FirstBad.load(std::memory_order_acquire) < C)
        return;
      ConfigOutcome Out = runOracleConfig(SirText, Specs[C], Opts, &Reference);
      if (!IsClean(Out)) {
        size_t Cur = FirstBad.load(std::memory_order_relaxed);
        while (C < Cur && !FirstBad.compare_exchange_weak(
                              Cur, C, std::memory_order_acq_rel))
          ;
      }
      Outcomes[C] = std::move(Out);
    });
    return replayInOrder(Specs, Outcomes, Opts);
  }

  // Sequential: one config at a time, stopping where the replay stops so
  // doomed later configs never run (matching the parallel short-circuit).
  for (size_t C = 1; C < Specs.size(); ++C) {
    Outcomes[C] = runOracleConfig(SirText, Specs[C], Opts, &Reference);
    if (!IsClean(Outcomes[C])) {
      const std::vector<ConfigSpec> Head(Specs.begin(),
                                         Specs.begin() + C + 1);
      Outcomes.resize(C + 1);
      return replayInOrder(Head, Outcomes, Opts);
    }
  }
  return replayInOrder(Specs, Outcomes, Opts);
}

} // namespace

OracleResult simtsr::runDifferentialOracle(const std::string &SirText,
                                           const OracleOptions &Opts) {
  OracleResult Result = runOracleVerdict(SirText, Opts);
  explainDivergence(SirText, Opts, Result);
  return Result;
}

std::vector<ProgressSpec> simtsr::certificationProgressModels() {
  std::vector<ProgressSpec> Models = {ProgressSpec{}};
  for (const char *Name : {"hsa", "obe", "bounded:4"}) {
    ProgressSpec S;
    parseProgressSpec(Name, S);
    Models.push_back(S);
  }
  return Models;
}

RepairCertification simtsr::certifyRepair(const std::string &RepairedText,
                                          const OracleOptions &Base) {
  OracleOptions Opts = Base;
  Opts.ProgressModels = certificationProgressModels();
  Opts.OnProgressLivelock = OracleOptions::ProgressVerdict::Classify;
  Opts.LintCheck = true;
  // Certification never injects faults: the oracle must judge the repair
  // itself, not a deliberately re-broken copy of it.
  Opts.Inject = FaultInjection::None;

  const OracleResult R = runDifferentialOracle(RepairedText, Opts);
  RepairCertification Cert;
  Cert.Certified = R.ok();
  if (!R.ok())
    Cert.Detail = std::string(getFailureKindName(R.Kind)) + ": " + R.Detail;
  Cert.ProgressLivelocks = R.ProgressLivelocks;
  Cert.Runs = R.Runs.size();
  return Cert;
}
