//===- Oracle.cpp - Differential pipeline/scheduler oracle --------------------===//

#include "fuzz/Oracle.h"

#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "transform/Pipeline.h"

using namespace simtsr;

const char *simtsr::getFailureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:
    return "none";
  case FailureKind::ParseError:
    return "parse-error";
  case FailureKind::InvalidModule:
    return "invalid-module";
  case FailureKind::Discipline:
    return "discipline";
  case FailureKind::PostPassInvalid:
    return "post-pass-invalid";
  case FailureKind::ChecksumMismatch:
    return "checksum-mismatch";
  case FailureKind::Deadlock:
    return "deadlock";
  case FailureKind::Trap:
    return "trap";
  case FailureKind::IssueLimit:
    return "issue-limit";
  case FailureKind::Timeout:
    return "timeout";
  case FailureKind::Malformed:
    return "malformed";
  }
  return "unknown";
}

const char *simtsr::getPolicyName(SchedulerPolicy P) {
  switch (P) {
  case SchedulerPolicy::MaxConvergence:
    return "maxconv";
  case SchedulerPolicy::MinPC:
    return "minpc";
  case SchedulerPolicy::RoundRobin:
    return "roundrobin";
  }
  return "unknown";
}

unsigned simtsr::injectFault(Module &M, FaultInjection F) {
  unsigned Changed = 0;
  for (size_t FI = 0; FI < M.size(); ++FI) {
    for (BasicBlock *BB : *M.function(FI)) {
      switch (F) {
      case FaultInjection::None:
        break;
      case FaultInjection::SwapBranchTargets:
        if (BB->hasTerminator() &&
            BB->terminator().opcode() == Opcode::Br) {
          Instruction &Br = BB->terminator();
          std::swap(Br.operand(1), Br.operand(2));
          ++Changed;
        }
        break;
      case FaultInjection::DropCancels: {
        auto &Insts = BB->instructions();
        for (size_t I = Insts.size(); I-- > 0;)
          if (Insts[I].opcode() == Opcode::CancelBarrier) {
            Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(I));
            ++Changed;
          }
        break;
      }
      }
    }
    M.function(FI)->recomputePreds();
  }
  return Changed;
}

namespace {

struct ConfigSpec {
  std::string Name;
  PipelineOptions Opts;
};

std::vector<ConfigSpec> makeConfigs(const OracleOptions &Opts) {
  PipelineOptions Noop;
  Noop.PdomSync = false;
  Noop.StripPredicts = true;

  PipelineOptions Sr;
  Sr.ApplySR = true;

  PipelineOptions SrIpRealloc = PipelineOptions::speculative();
  SrIpRealloc.ReallocBarriers = true;

  return {
      {"noop", Noop},
      {"pdom", PipelineOptions::baseline()},
      {"sr", Sr},
      {"sr+ip", PipelineOptions::speculative()},
      {"soft", PipelineOptions::softBarrier(Opts.SoftThreshold)},
      {"sr+ip+realloc", SrIpRealloc},
  };
}

std::string joinFirst(const std::vector<std::string> &Diags, size_t Max) {
  std::string Out;
  for (size_t I = 0; I < Diags.size() && I < Max; ++I) {
    if (!Out.empty())
      Out += "; ";
    Out += Diags[I];
  }
  if (Diags.size() > Max)
    Out += "; +" + std::to_string(Diags.size() - Max) + " more";
  return Out;
}

FailureKind kindForStatus(RunResult::Status St) {
  switch (St) {
  case RunResult::Status::Finished:
    return FailureKind::None;
  case RunResult::Status::Deadlock:
    return FailureKind::Deadlock;
  case RunResult::Status::Trap:
    return FailureKind::Trap;
  case RunResult::Status::IssueLimit:
    return FailureKind::IssueLimit;
  case RunResult::Status::Timeout:
    return FailureKind::Timeout;
  case RunResult::Status::Malformed:
    return FailureKind::Malformed;
  }
  return FailureKind::Trap;
}

} // namespace

const std::vector<std::string> &simtsr::oracleConfigNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N;
    for (const ConfigSpec &C : makeConfigs(OracleOptions{}))
      N.push_back(C.Name);
    return N;
  }();
  return Names;
}

OracleResult simtsr::runDifferentialOracle(const std::string &SirText,
                                           const OracleOptions &Opts) {
  OracleResult Result;

  // Reject inputs that are broken before any pass touches them, so every
  // later failure is attributable to the pipeline or the simulator.
  {
    ParseResult Parsed = parseModule(SirText);
    if (!Parsed.ok()) {
      Result.Kind = FailureKind::ParseError;
      Result.Detail = joinFirst(Parsed.Errors, 3);
      return Result;
    }
    auto Diags = verifyModule(*Parsed.M);
    if (!Diags.empty()) {
      Result.Kind = FailureKind::InvalidModule;
      Result.Detail = joinFirst(Diags, 3);
      return Result;
    }
    if (!Parsed.M->functionByName("kernel")) {
      Result.Kind = FailureKind::InvalidModule;
      Result.Detail = "no function named 'kernel'";
      return Result;
    }
  }

  const SchedulerPolicy Policies[] = {SchedulerPolicy::MaxConvergence,
                                      SchedulerPolicy::MinPC,
                                      SchedulerPolicy::RoundRobin};
  bool HaveReference = false;
  uint64_t ReferenceChecksum = 0;
  std::string ReferenceLabel;

  for (const ConfigSpec &Spec : makeConfigs(Opts)) {
    // Fresh parse per config: pipelines mutate the module.
    ParseResult Parsed = parseModule(SirText);
    if (!Parsed.ok()) {
      Result.Kind = FailureKind::ParseError;
      Result.Detail = joinFirst(Parsed.Errors, 3);
      return Result;
    }
    Module &M = *Parsed.M;

    PipelineReport Report = runSyncPipeline(M, Spec.Opts);
    if (!Report.clean()) {
      Result.Kind = FailureKind::Discipline;
      Result.Detail = "config " + Spec.Name + ": " +
                      joinFirst(Report.VerifierDiagnostics, 3);
      return Result;
    }
    auto PostDiags = verifyModule(M);
    if (!PostDiags.empty()) {
      Result.Kind = FailureKind::PostPassInvalid;
      Result.Detail =
          "config " + Spec.Name + ": " + joinFirst(PostDiags, 3);
      return Result;
    }

    // A broken late pass: miscompile one config after all checks passed.
    if (Opts.Inject != FaultInjection::None && Spec.Name == "sr")
      injectFault(M, Opts.Inject);

    for (SchedulerPolicy Policy : Policies) {
      LaunchConfig Config;
      Config.WarpSize = Opts.WarpSize;
      Config.Seed = Opts.SimSeed;
      Config.Policy = Policy;
      Config.MaxIssueSlots = Opts.MaxIssueSlots;
      Config.MaxWallMillis = Opts.MaxWallMillis;

      WarpSimulator Sim(M, M.functionByName("kernel"), Config);
      RunResult Run = Sim.run();
      const std::string Label =
          Spec.Name + "/" + getPolicyName(Policy);

      OracleRun Record;
      Record.Config = Spec.Name;
      Record.Policy = Policy;
      Record.St = Run.St;
      Record.Checksum = Sim.memoryChecksum();
      Result.Runs.push_back(Record);

      if (!Run.ok()) {
        Result.Kind = kindForStatus(Run.St);
        Result.Detail = "config " + Label + ": " +
                        getRunStatusName(Run.St) +
                        (Run.TrapMessage.empty() ? ""
                                                 : ": " + Run.TrapMessage);
        return Result;
      }
      if (!HaveReference) {
        HaveReference = true;
        ReferenceChecksum = Record.Checksum;
        ReferenceLabel = Label;
      } else if (Record.Checksum != ReferenceChecksum) {
        Result.Kind = FailureKind::ChecksumMismatch;
        Result.Detail = "config " + Label + ": checksum " +
                        std::to_string(Record.Checksum) + " != " +
                        std::to_string(ReferenceChecksum) + " from " +
                        ReferenceLabel;
        return Result;
      }
    }
  }
  return Result;
}
