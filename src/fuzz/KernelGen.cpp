//===- KernelGen.cpp - Random divergent kernel generation ---------------------===//

#include "fuzz/KernelGen.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "support/Rng.h"

#include <vector>

using namespace simtsr;

namespace {

/// Global-memory layout shared with the oracle: a handful of atomic
/// accumulator cells plus one disjoint 16-word slice per thread.
constexpr uint64_t MemoryWords = 4096;
constexpr int64_t AccumBase = 8;
constexpr int64_t NumAccums = 8;
constexpr int64_t SliceBase = 64;
constexpr int64_t SliceWords = 16;

/// Per-function generation context.
struct GenCtx {
  const GenOptions &Opts;
  Rng &R;
  IRBuilder B;
  /// Registers holding thread-locally deterministic values; operand pool.
  std::vector<unsigned> Pool;
  /// Register holding this thread's slice base address.
  unsigned SliceReg = 0;
  /// Helpers callable from this function (empty inside helpers: the
  /// generated call graph is acyclic by construction).
  std::vector<Function *> Helpers;
  /// Call counts, parallel to Helpers (the kernel epilogue tops up
  /// never-called helpers so every helper is exercised).
  std::vector<unsigned> *HelperCalls = nullptr;
  unsigned NextBlock = 0;

  GenCtx(const GenOptions &Opts, Rng &R, Function *F)
      : Opts(Opts), R(R), B(F) {}

  std::string blockName() { return "b" + std::to_string(NextBlock++); }

  Operand pick() {
    return Operand::reg(Pool[R.nextBelow(Pool.size())]);
  }
  /// A pooled register or a small immediate.
  Operand pickOrImm() {
    if (R.nextBool(0.3))
      return Operand::imm(R.nextInRange(-64, 64));
    return pick();
  }
  void push(unsigned Reg) {
    Pool.push_back(Reg);
    // Bound the pool so late code still reads early values sometimes.
    if (Pool.size() > 24)
      Pool.erase(Pool.begin() + static_cast<ptrdiff_t>(
                                    R.nextBelow(Pool.size())));
  }
};

/// Emits one arithmetic/logic/compare/select instruction reading the pool.
/// Division and remainder get a guaranteed-nonzero denominator so no
/// generated kernel can trap (invariant 1 of the header comment).
void genArith(GenCtx &C) {
  static const Opcode Safe[] = {
      Opcode::Add,   Opcode::Sub,   Opcode::Mul,   Opcode::And,
      Opcode::Or,    Opcode::Xor,   Opcode::Shl,   Opcode::Shr,
      Opcode::Min,   Opcode::Max,   Opcode::CmpEQ, Opcode::CmpNE,
      Opcode::CmpLT, Opcode::CmpLE, Opcode::CmpGT, Opcode::CmpGE,
  };
  switch (C.R.nextBelow(8)) {
  case 0: { // div/rem with denominator in [1, 8]
    unsigned Masked = C.B.andOp(C.pick(), Operand::imm(7));
    unsigned Denom = C.B.add(Operand::reg(Masked), Operand::imm(1));
    unsigned Dst = C.R.nextBool(0.5)
                       ? C.B.div(C.pick(), Operand::reg(Denom))
                       : C.B.rem(C.pick(), Operand::reg(Denom));
    C.push(Dst);
    return;
  }
  case 1:
    C.push(C.B.unary(C.R.nextBool(0.5) ? Opcode::Not : Opcode::Neg,
                     C.pick()));
    return;
  case 2:
    C.push(C.B.select(C.pick(), C.pickOrImm(), C.pickOrImm()));
    return;
  case 3:
    if (C.R.nextBool(0.5)) {
      C.push(C.B.rand());
    } else {
      int64_t Width = 1 + static_cast<int64_t>(C.R.nextBelow(128));
      C.push(C.B.randRange(Operand::imm(0), Operand::imm(Width)));
    }
    return;
  default:
    C.push(C.B.binary(Safe[C.R.nextBelow(std::size(Safe))], C.pick(),
                      C.pickOrImm()));
    return;
  }
}

/// Emits a load or store confined to this thread's own slice, or an
/// atomicadd on a shared accumulator whose old-value result is discarded
/// (invariant 2: no cross-thread data flow, no schedule-observing reads).
void genMemory(GenCtx &C) {
  switch (C.R.nextBelow(3)) {
  case 0: {
    unsigned Addr = C.B.add(Operand::reg(C.SliceReg),
                            Operand::imm(static_cast<int64_t>(
                                C.R.nextBelow(SliceWords))));
    C.push(C.B.load(Operand::reg(Addr)));
    return;
  }
  case 1: {
    unsigned Addr = C.B.add(Operand::reg(C.SliceReg),
                            Operand::imm(static_cast<int64_t>(
                                C.R.nextBelow(SliceWords))));
    C.B.store(Operand::reg(Addr), C.pick());
    return;
  }
  default: {
    int64_t Cell = AccumBase + static_cast<int64_t>(C.R.nextBelow(NumAccums));
    // The returned old value is schedule-dependent; drop it on the floor.
    (void)C.B.atomicAdd(Operand::imm(Cell), C.pick());
    return;
  }
  }
}

void genStatements(GenCtx &C, unsigned Depth);

/// If/else on a (usually divergent) pooled condition, reconverging at a
/// fresh merge block; optionally annotated with a predict directive at the
/// branch block, which dominates the merge label by construction.
void genIfElse(GenCtx &C, unsigned Depth) {
  unsigned Cond = C.B.cmpLT(C.pick(), C.pickOrImm());
  Function *F = C.B.function();
  BasicBlock *Then = F->createBlock(C.blockName());
  BasicBlock *Else = F->createBlock(C.blockName());
  BasicBlock *Merge = F->createBlock(C.blockName());
  if (C.R.nextBool(C.Opts.PredictProbability))
    C.B.predict(Merge);
  C.B.br(Operand::reg(Cond), Then, Else);

  size_t PoolMark = C.Pool.size();
  C.B.setInsertBlock(Then);
  genStatements(C, Depth + 1);
  C.B.jmp(Merge);
  C.Pool.resize(PoolMark);

  C.B.setInsertBlock(Else);
  genStatements(C, Depth + 1);
  C.B.jmp(Merge);
  C.Pool.resize(PoolMark);

  C.B.setInsertBlock(Merge);
}

/// Counted loop with a per-thread trip count in [1, MaxTripCount]
/// (invariant 3: the counter only grows and the break path only leaves
/// early, so termination is structural). Divergent trip counts are the
/// common case: the limit derives from pooled thread-local data. With
/// some probability the body gets a divergent early break that bypasses
/// the loop-exit block — the canonical region-escaping path that forces
/// the SR pass to place cancels on exit edges (Figure 4(d)).
void genLoop(GenCtx &C, unsigned Depth) {
  unsigned Limit;
  if (C.R.nextBool(0.5)) {
    unsigned Masked =
        C.B.andOp(C.pick(), Operand::imm(static_cast<int64_t>(
                                C.Opts.MaxTripCount - 1)));
    Limit = C.B.add(Operand::reg(Masked), Operand::imm(1));
  } else {
    Limit = C.B.mov(Operand::imm(
        1 + static_cast<int64_t>(C.R.nextBelow(C.Opts.MaxTripCount))));
  }
  unsigned Counter = C.B.mov(Operand::imm(0));

  Function *F = C.B.function();
  BasicBlock *Header = F->createBlock(C.blockName());
  BasicBlock *Body = F->createBlock(C.blockName());
  BasicBlock *Exit = F->createBlock(C.blockName());
  const bool HasBreak = C.R.nextBool(0.4);
  BasicBlock *Break = HasBreak ? F->createBlock(C.blockName()) : nullptr;
  BasicBlock *After = HasBreak ? F->createBlock(C.blockName()) : Exit;
  if (C.R.nextBool(C.Opts.PredictProbability))
    C.B.predict(Exit);
  C.B.jmp(Header);

  C.B.setInsertBlock(Header);
  unsigned Cond = C.B.cmpLT(Operand::reg(Counter), Operand::reg(Limit));
  C.B.br(Operand::reg(Cond), Body, Exit);

  size_t PoolMark = C.Pool.size();
  C.B.setInsertBlock(Body);
  genStatements(C, Depth + 1);
  if (HasBreak) {
    // Divergent early exit that skips the loop-exit block entirely, so
    // threads taking it leave any prediction region for `Exit` sideways.
    BasicBlock *Cont = F->createBlock(C.blockName());
    unsigned BreakCond = C.B.cmpEQ(C.pick(), C.pickOrImm());
    C.B.br(Operand::reg(BreakCond), Break, Cont);
    C.B.setInsertBlock(Cont);
  }
  // In-place increment of the trip counter (the builder would allocate a
  // fresh destination, which must not happen here).
  C.B.insertBlock()->append(Instruction(
      Opcode::Add, Counter, {Operand::reg(Counter), Operand::imm(1)}));
  C.B.jmp(Header);
  C.Pool.resize(PoolMark);

  if (HasBreak) {
    C.B.setInsertBlock(Break);
    C.B.jmp(After);
    C.B.setInsertBlock(Exit);
    C.B.jmp(After);
  }
  C.B.setInsertBlock(After);
}

void genCall(GenCtx &C) {
  size_t Index = C.R.nextBelow(C.Helpers.size());
  Function *Callee = C.Helpers[Index];
  std::vector<Operand> Args;
  for (unsigned P = 0; P < Callee->numParams(); ++P)
    Args.push_back(C.pickOrImm());
  C.push(C.B.call(Callee, std::move(Args)));
  if (C.HelperCalls)
    (*C.HelperCalls)[Index] += 1;
}

void genStatements(GenCtx &C, unsigned Depth) {
  unsigned Items = 1 + static_cast<unsigned>(
                           C.R.nextBelow(C.Opts.MaxItemsPerLevel));
  for (unsigned I = 0; I < Items; ++I) {
    unsigned Kind = static_cast<unsigned>(C.R.nextBelow(10));
    if (Kind < 4) {
      genArith(C);
    } else if (Kind < 6) {
      genMemory(C);
    } else if (Kind == 6 && !C.Helpers.empty()) {
      genCall(C);
    } else if (Depth < C.Opts.MaxDepth) {
      if (C.R.nextBool(0.5))
        genIfElse(C, Depth);
      else
        genLoop(C, Depth);
    } else {
      genArith(C);
    }
  }
}

/// Emits the shared prologue: tid/laneid seeds and the slice base address
/// `SliceBase + tid * SliceWords` (in bounds for any tid < MaxWarpSize).
void genPrologue(GenCtx &C) {
  unsigned Tid = C.B.tid();
  unsigned Lane = C.B.laneId();
  unsigned Scaled = C.B.mul(Operand::reg(Tid), Operand::imm(SliceWords));
  C.SliceReg = C.B.add(Operand::reg(Scaled), Operand::imm(SliceBase));
  C.push(Tid);
  C.push(Lane);
  C.push(C.B.rand());
}

void genHelper(const GenOptions &Opts, Rng &R, Function *F) {
  GenCtx C(Opts, R, F);
  C.B.startBlock("entry");
  genPrologue(C);
  for (unsigned P = 0; P < F->numParams(); ++P)
    C.push(P);
  // Helpers are one construct-level shallower than the kernel.
  genStatements(C, C.Opts.MaxDepth > 0 ? 1 : 0);
  C.B.ret(C.pick());
}

} // namespace

std::unique_ptr<Module> simtsr::generateKernelModule(const GenOptions &Opts) {
  // Decorrelate nearby seeds before feeding xoshiro.
  uint64_t Mix = Opts.Seed;
  (void)splitMix64(Mix);
  Rng R(splitMix64(Mix));

  auto M = std::make_unique<Module>();
  M->setGlobalMemoryWords(MemoryWords);

  std::vector<Function *> Helpers;
  unsigned NumHelpers =
      static_cast<unsigned>(R.nextBelow(Opts.MaxHelpers + 1));
  for (unsigned H = 0; H < NumHelpers; ++H) {
    Function *F =
        M->createFunction("helper" + std::to_string(H),
                          1 + static_cast<unsigned>(R.nextBelow(2)));
    F->setReconvergeAtEntry(R.nextBool(Opts.ReconvergeEntryProbability));
    genHelper(Opts, R, F);
    Helpers.push_back(F);
  }

  Function *Kernel = M->createFunction("kernel", 0);
  GenCtx C(Opts, R, Kernel);
  C.Helpers = Helpers;
  std::vector<unsigned> Calls(Helpers.size(), 0);
  C.HelperCalls = &Calls;
  C.B.startBlock("entry");
  genPrologue(C);
  genStatements(C, 0);

  // Epilogue: make sure every helper is exercised at least once, fold a
  // couple of live values into the thread's slice, and bump a shared
  // accumulator so the checksum depends on most of the computation.
  for (size_t H = 0; H < Helpers.size(); ++H)
    if (Calls[H] == 0) {
      C.Helpers = {Helpers[H]};
      C.HelperCalls = nullptr;
      genCall(C);
    }
  unsigned Addr0 = C.B.add(Operand::reg(C.SliceReg), Operand::imm(0));
  C.B.store(Operand::reg(Addr0), C.pick());
  unsigned Addr1 = C.B.add(Operand::reg(C.SliceReg), Operand::imm(1));
  C.B.store(Operand::reg(Addr1), C.pick());
  (void)C.B.atomicAdd(Operand::imm(AccumBase), C.pick());
  C.B.ret();

  for (size_t I = 0; I < M->size(); ++I)
    M->function(I)->recomputePreds();
  return M;
}

std::string simtsr::generateKernelText(const GenOptions &Opts) {
  return printModule(*generateKernelModule(Opts));
}
