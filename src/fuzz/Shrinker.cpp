//===- Shrinker.cpp - Failing-module minimization -----------------------------===//

#include "fuzz/Shrinker.h"

#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <algorithm>
#include <sstream>

using namespace simtsr;

namespace {

class Shrinker {
public:
  Shrinker(std::string Text, FailureKind Target, const ShrinkOptions &Opts)
      : Current(std::move(Text)), Target(Target), Opts(Opts),
        Oracle(Opts.Oracle) {
    Oracle.MaxIssueSlots =
        std::min(Oracle.MaxIssueSlots, Opts.CandidateMaxIssueSlots);
    if (Oracle.MaxWallMillis == 0)
      Oracle.MaxWallMillis = Opts.CandidateMaxWallMillis;
    else
      Oracle.MaxWallMillis =
          std::min(Oracle.MaxWallMillis, Opts.CandidateMaxWallMillis);
  }

  ShrinkResult run() {
    ShrinkResult Result;
    // The failure must reproduce — under the capped candidate budget —
    // before any reduction is attempted.
    if (runDifferentialOracle(Current, Oracle).Kind != Target) {
      Result.Text = Current;
      Result.Kind = Target;
      return Result;
    }
    bool Progress = true;
    while (Progress && budgetLeft()) {
      Progress = false;
      for (size_t Chunk : {16u, 8u, 4u, 2u, 1u})
        Progress |= chunkPass(Chunk);
      Progress |= branchPass();
      Progress |= unreachablePass();
    }
    Result.Text = Current;
    Result.Kind = Target;
    Result.AttemptsUsed = Attempts;
    Result.StepsAccepted = Accepted;
    return Result;
  }

private:
  bool budgetLeft() const { return Attempts < Opts.MaxAttempts; }

  /// Re-runs the oracle on \p Candidate; adopts it when the target failure
  /// still reproduces and the text shrank.
  bool accept(const std::string &Candidate) {
    ++Attempts;
    if (Candidate.size() >= Current.size())
      return false;
    if (runDifferentialOracle(Candidate, Oracle).Kind != Target)
      return false;
    Current = Candidate;
    ++Accepted;
    return true;
  }

  /// Removes non-terminator instruction runs of \p ChunkSize, block by
  /// block, undoing every rejected removal in place.
  bool chunkPass(size_t ChunkSize) {
    ParseResult P = parseModule(Current);
    if (!P.ok())
      return false;
    Module &M = *P.M;
    bool Any = false;
    for (size_t FI = 0; FI < M.size(); ++FI) {
      for (BasicBlock *BB : *M.function(FI)) {
        auto &Insts = BB->instructions();
        const size_t Removable =
            BB->hasTerminator() ? Insts.size() - 1 : Insts.size();
        // Back to front so earlier start offsets stay valid after a
        // removal is kept.
        for (size_t Start = (Removable / ChunkSize) * ChunkSize + ChunkSize;
             Start >= ChunkSize && budgetLeft(); Start -= ChunkSize) {
          size_t Lo = Start - ChunkSize;
          if (Lo >= Removable)
            continue;
          size_t Hi = std::min(Start, Removable);
          std::vector<Instruction> Saved(
              Insts.begin() + static_cast<ptrdiff_t>(Lo),
              Insts.begin() + static_cast<ptrdiff_t>(Hi));
          Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Lo),
                      Insts.begin() + static_cast<ptrdiff_t>(Hi));
          if (accept(printModule(M))) {
            Any = true;
          } else {
            Insts.insert(Insts.begin() + static_cast<ptrdiff_t>(Lo),
                         Saved.begin(), Saved.end());
          }
        }
      }
    }
    return Any;
  }

  /// Degrades conditional branches to unconditional jumps (then the else
  /// target, then the then target), shedding whole CFG subtrees.
  bool branchPass() {
    ParseResult P = parseModule(Current);
    if (!P.ok())
      return false;
    Module &M = *P.M;
    bool Any = false;
    for (size_t FI = 0; FI < M.size(); ++FI) {
      Function &F = *M.function(FI);
      for (BasicBlock *BB : F) {
        if (!budgetLeft())
          return Any;
        if (!BB->hasTerminator() ||
            BB->terminator().opcode() != Opcode::Br)
          continue;
        Instruction Saved = BB->terminator();
        for (unsigned TargetOp : {2u, 1u}) {
          BB->instructions().back() =
              Instruction(Opcode::Jmp, NoRegister,
                          {Saved.operand(TargetOp)});
          F.recomputePreds();
          if (accept(printModule(M))) {
            Any = true;
            break;
          }
          BB->instructions().back() = Saved;
          F.recomputePreds();
        }
      }
    }
    return Any;
  }

  /// Drops the text of blocks no longer reachable from their function's
  /// entry. Works on the printed form (labels sit at column zero), so a
  /// block still referenced by a stale predict simply fails to re-parse
  /// and the candidate is rejected by the oracle front end.
  bool unreachablePass() {
    ParseResult P = parseModule(Current);
    if (!P.ok() || !budgetLeft())
      return false;
    Module &M = *P.M;
    std::vector<std::string> DeadLabels;
    for (size_t FI = 0; FI < M.size(); ++FI) {
      Function &F = *M.function(FI);
      F.recomputePreds();
      std::vector<bool> Reached(F.size(), false);
      std::vector<BasicBlock *> Worklist = {F.entry()};
      Reached[F.entry()->number()] = true;
      while (!Worklist.empty()) {
        BasicBlock *BB = Worklist.back();
        Worklist.pop_back();
        for (BasicBlock *S : BB->successors())
          if (!Reached[S->number()]) {
            Reached[S->number()] = true;
            Worklist.push_back(S);
          }
      }
      for (BasicBlock *BB : F)
        if (!Reached[BB->number()])
          DeadLabels.push_back(BB->name());
    }
    if (DeadLabels.empty())
      return false;

    std::istringstream In(Current);
    std::string Line, Candidate;
    bool Skipping = false;
    while (std::getline(In, Line)) {
      const bool IsLabel =
          !Line.empty() && Line.back() == ':' && Line[0] != ' ';
      if (IsLabel) {
        std::string Name = Line.substr(0, Line.size() - 1);
        Skipping = std::find(DeadLabels.begin(), DeadLabels.end(), Name) !=
                   DeadLabels.end();
      } else if (!Line.empty() && Line[0] != ' ') {
        Skipping = false; // func header or closing brace
      }
      if (!Skipping) {
        Candidate += Line;
        Candidate += '\n';
      }
    }
    return accept(Candidate);
  }

  std::string Current;
  FailureKind Target;
  const ShrinkOptions &Opts;
  /// Effective oracle options: Opts.Oracle with the candidate caps applied.
  OracleOptions Oracle;
  unsigned Attempts = 0;
  unsigned Accepted = 0;
};

} // namespace

ShrinkResult simtsr::shrinkFailingModule(const std::string &Text,
                                         FailureKind Kind,
                                         const ShrinkOptions &Opts) {
  return Shrinker(Text, Kind, Opts).run();
}
