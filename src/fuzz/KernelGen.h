//===- KernelGen.h - Random divergent kernel generation --------*- C++ -*-===//
///
/// \file
/// Seeded generator of well-formed, divergence-heavy `.sir` modules for the
/// differential torture harness. Every generated module satisfies three
/// invariants that make it a sound differential-testing input:
///
///  1. **Trap-free**: addresses are always in bounds, denominators are
///     never zero, and `randrange` bounds are always non-empty, so no run
///     aborts at a schedule-dependent point.
///  2. **Race-free**: each thread stores only into its own 16-word global
///     memory slice; shared accumulator cells are touched exclusively with
///     `atomicadd` whose (schedule-dependent) old-value result is written
///     to a scratch register no other instruction reads.
///  3. **Terminating**: every loop is bounded by an explicit trip counter
///     with a compile-time-bounded limit, and the generated call graph is
///     acyclic (helpers never call).
///
/// Together these guarantee every thread executes the same instruction
/// trace under any scheduler policy and any barrier placement, so the final
/// global-memory checksum is a schedule- and pipeline-independent function
/// of the seed — exactly what the oracle in Oracle.h asserts.
///
/// The generator deliberately emits no `warpsync` and never reads
/// `arrived` counts: both observe the schedule and would make legitimate
/// runs diverge.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_FUZZ_KERNELGEN_H
#define SIMTSR_FUZZ_KERNELGEN_H

#include <cstdint>
#include <memory>
#include <string>

namespace simtsr {

class Module;

struct GenOptions {
  uint64_t Seed = 0;
  /// Maximum nesting depth of if/loop constructs.
  unsigned MaxDepth = 3;
  /// Maximum sequential constructs per nesting level.
  unsigned MaxItemsPerLevel = 4;
  /// Maximum static loop trip count (data-dependent counts stay below it).
  unsigned MaxTripCount = 8;
  /// Maximum number of helper functions (callees of the kernel).
  unsigned MaxHelpers = 2;
  /// Probability that an if/loop construct gets a `predict` directive.
  double PredictProbability = 0.6;
  /// Probability that a helper is marked reconverge_entry.
  double ReconvergeEntryProbability = 0.5;
  /// Warp size the memory layout is sized for (threads own disjoint
  /// slices; the module works for any warp size up to this value).
  unsigned MaxWarpSize = 32;
};

/// Generates a module whose kernel is the parameterless function "kernel".
/// The result always passes verifyModule().
std::unique_ptr<Module> generateKernelModule(const GenOptions &Opts);

/// Prints generateKernelModule(Opts) to `.sir` text.
std::string generateKernelText(const GenOptions &Opts);

} // namespace simtsr

#endif // SIMTSR_FUZZ_KERNELGEN_H
