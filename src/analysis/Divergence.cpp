//===- Divergence.cpp - Thread-divergence analysis ----------------------------===//

#include "analysis/Divergence.h"

#include "analysis/CallGraph.h"
#include "ir/CFGUtils.h"
#include "ir/Module.h"

#include <cassert>

using namespace simtsr;

bool DivergenceAnalysis::operandDivergent(const Operand &O) const {
  return O.isReg() && isDivergentReg(O.getReg());
}

bool DivergenceAnalysis::instructionProducesDivergence(
    const Instruction &I) const {
  switch (I.opcode()) {
  case Opcode::Tid:
  case Opcode::LaneId:
  case Opcode::Rand:
  case Opcode::RandRange:
  case Opcode::AtomicAdd:
  case Opcode::ArrivedCount:
    return true;
  case Opcode::Load:
    // A load from a uniform address yields the same value for every thread
    // issuing together; only divergent addressing diverges.
    return operandDivergent(I.operand(0));
  case Opcode::Call: {
    const Function *Callee = I.operand(0).getFunc();
    if (Opts.CalleeReturnsDivergent) {
      auto It = Opts.CalleeReturnsDivergent->find(Callee);
      if (It != Opts.CalleeReturnsDivergent->end()) {
        if (It->second)
          return true;
        // Uniform callee: result diverges only through divergent arguments.
        for (unsigned Idx = 1; Idx < I.numOperands(); ++Idx)
          if (operandDivergent(I.operand(Idx)))
            return true;
        return false;
      }
    }
    return true; // Unknown callee: be conservative.
  }
  default:
    // Data dependence: divergent operand -> divergent result.
    for (const Operand &O : I.operands())
      if (operandDivergent(O))
        return true;
    return false;
  }
}

void DivergenceAnalysis::taintControlDependent(
    Function &F, const PostDominatorTree &PDT, const BasicBlock *Branch,
    std::vector<bool> &BlockTainted) {
  // The influence region of a divergent branch: blocks reachable from its
  // successors without passing through the branch's immediate
  // post-dominator. Definitions there may or may not execute per-thread, so
  // their targets become divergent.
  const BasicBlock *Stop =
      PDT.nearestCommonDominator(Branch->successors()[0],
                                 Branch->successors()[1]);
  std::vector<BasicBlock *> Worklist;
  for (BasicBlock *Succ : Branch->successors())
    if (Succ != Stop && !BlockTainted[Succ->number()]) {
      BlockTainted[Succ->number()] = true;
      Worklist.push_back(Succ);
    }
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    for (BasicBlock *Succ : BB->successors()) {
      if (Succ == Stop || BlockTainted[Succ->number()])
        continue;
      BlockTainted[Succ->number()] = true;
      Worklist.push_back(Succ);
    }
  }
  (void)F;
}

DivergenceAnalysis::DivergenceAnalysis(Function &F,
                                       const PostDominatorTree &PDT,
                                       Options Opts)
    : Opts(Opts) {
  F.recomputePreds();
  DivergentRegs.assign(F.numRegs(), false);
  DivergentBranchBlocks.assign(F.size(), false);
  if (Opts.ParamsDivergent)
    for (unsigned P = 0; P < F.numParams(); ++P)
      DivergentRegs[P] = true;

  for (BasicBlock *BB : F)
    for (const Instruction &I : BB->instructions())
      switch (I.opcode()) {
      case Opcode::Tid:
      case Opcode::LaneId:
      case Opcode::Rand:
      case Opcode::RandRange:
      case Opcode::AtomicAdd:
        HasSources = true;
        break;
      default:
        break;
      }

  // Fixpoint: data-dependence propagation plus control-dependence taint.
  bool Changed = true;
  while (Changed) {
    Changed = false;

    // Data dependences, in RPO for fast convergence.
    for (BasicBlock *BB : reversePostOrder(F))
      for (const Instruction &I : BB->instructions()) {
        if (!I.hasDst() || DivergentRegs[I.dst()])
          continue;
        if (instructionProducesDivergence(I)) {
          DivergentRegs[I.dst()] = true;
          Changed = true;
        }
      }

    // Control dependences: any definition inside the influence region of a
    // divergent branch becomes divergent.
    std::vector<bool> Tainted(F.size(), false);
    for (BasicBlock *BB : F) {
      if (!BB->hasTerminator() || BB->terminator().opcode() != Opcode::Br)
        continue;
      if (!operandDivergent(BB->terminator().operand(0)))
        continue;
      DivergentBranchBlocks[BB->number()] = true;
      taintControlDependent(F, PDT, BB, Tainted);
    }
    for (BasicBlock *BB : F) {
      if (!Tainted[BB->number()])
        continue;
      for (const Instruction &I : BB->instructions()) {
        if (!I.hasDst() || DivergentRegs[I.dst()])
          continue;
        DivergentRegs[I.dst()] = true;
        Changed = true;
      }
    }
  }

  for (BasicBlock *BB : F) {
    if (!BB->hasTerminator())
      continue;
    const Instruction &Term = BB->terminator();
    if (Term.opcode() == Opcode::Ret && Term.numOperands() == 1 &&
        operandDivergent(Term.operand(0)))
      ReturnsDivergent = true;
  }
}

bool DivergenceAnalysis::isDivergentBranch(const BasicBlock *BB) const {
  unsigned N = BB->number();
  return N < DivergentBranchBlocks.size() && DivergentBranchBlocks[N];
}

// -- ModuleDivergenceInfo -----------------------------------------------------

ModuleDivergenceInfo::ModuleDivergenceInfo(Module &M) {
  CallGraph CG(M);
  // Bottom-up: callees summarized before callers so call results can be
  // classified precisely.
  for (Function *F : CG.bottomUpOrder()) {
    PostDominatorTree PDT(*F);
    DivergenceAnalysis::Options Opts;
    Opts.CalleeReturnsDivergent = &ReturnSummaries;
    auto DA = std::make_unique<DivergenceAnalysis>(*F, PDT, Opts);
    ReturnSummaries[F] = DA->returnsDivergent();
    PerFunction[F] = std::move(DA);
  }
}

ModuleDivergenceInfo::~ModuleDivergenceInfo() = default;

const DivergenceAnalysis &
ModuleDivergenceInfo::forFunction(const Function *F) const {
  auto It = PerFunction.find(F);
  assert(It != PerFunction.end() && "function not analyzed");
  return *It->second;
}
