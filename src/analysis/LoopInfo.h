//===- LoopInfo.h - Natural loop detection ---------------------*- C++ -*-===//
///
/// \file
/// Natural loops from back edges (Header dominates Latch). Loops know their
/// blocks, nesting, exiting edges and (unique) preheader when one exists.
/// The Loop Merge / Iteration Delay detectors in the transform layer are
/// built on this.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_ANALYSIS_LOOPINFO_H
#define SIMTSR_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <memory>
#include <vector>

namespace simtsr {

class Loop {
public:
  BasicBlock *header() const { return Header; }
  Loop *parent() const { return Parent; }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }
  const std::vector<BasicBlock *> &blocks() const { return Blocks; }
  /// Blocks that branch back to the header from inside the loop.
  const std::vector<BasicBlock *> &latches() const { return Latches; }

  bool contains(const BasicBlock *BB) const;
  bool contains(const Loop *L) const;

  /// Nesting depth; outermost loops have depth 1.
  unsigned depth() const;

  /// Edges (From inside, To outside) leaving the loop.
  std::vector<std::pair<BasicBlock *, BasicBlock *>> exitEdges() const;

  /// The unique predecessor of the header outside the loop, or nullptr if
  /// the header has several outside predecessors.
  BasicBlock *preheader() const;

private:
  friend class LoopInfo;

  BasicBlock *Header = nullptr;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
  std::vector<BasicBlock *> Blocks;  ///< Header first; unordered otherwise.
  std::vector<BasicBlock *> Latches;
  std::vector<bool> BlockSet;        ///< Indexed by block number.
};

class LoopInfo {
public:
  /// \p DT must be a current dominator tree for \p F.
  LoopInfo(Function &F, const DominatorTree &DT);

  const std::vector<Loop *> &topLevelLoops() const { return TopLevel; }
  /// All loops, outermost first within each nest.
  const std::vector<Loop *> &loops() const { return AllLoops; }

  /// Innermost loop containing \p BB, or nullptr.
  Loop *loopFor(const BasicBlock *BB) const;

  /// Loop whose header is \p BB, or nullptr.
  Loop *loopWithHeader(const BasicBlock *BB) const;

private:
  std::vector<std::unique_ptr<Loop>> Storage;
  std::vector<Loop *> AllLoops;
  std::vector<Loop *> TopLevel;
  std::vector<Loop *> InnermostByBlock; ///< Indexed by block number.
};

} // namespace simtsr

#endif // SIMTSR_ANALYSIS_LOOPINFO_H
