//===- LoopInfo.cpp - Natural loop detection ---------------------------------===//

#include "analysis/LoopInfo.h"

#include "ir/CFGUtils.h"

#include <algorithm>
#include <map>

using namespace simtsr;

bool Loop::contains(const BasicBlock *BB) const {
  unsigned N = BB->number();
  return N < BlockSet.size() && BlockSet[N];
}

bool Loop::contains(const Loop *L) const {
  for (const Loop *P = L; P; P = P->parent())
    if (P == this)
      return true;
  return false;
}

unsigned Loop::depth() const {
  unsigned D = 0;
  for (const Loop *P = this; P; P = P->parent())
    ++D;
  return D;
}

std::vector<std::pair<BasicBlock *, BasicBlock *>> Loop::exitEdges() const {
  std::vector<std::pair<BasicBlock *, BasicBlock *>> Edges;
  for (BasicBlock *BB : Blocks)
    for (BasicBlock *Succ : BB->successors())
      if (!contains(Succ))
        Edges.push_back({BB, Succ});
  return Edges;
}

BasicBlock *Loop::preheader() const {
  BasicBlock *Candidate = nullptr;
  for (BasicBlock *Pred : Header->predecessors()) {
    if (contains(Pred))
      continue;
    if (Candidate && Candidate != Pred)
      return nullptr;
    Candidate = Pred;
  }
  return Candidate;
}

LoopInfo::LoopInfo(Function &F, const DominatorTree &DT) {
  F.recomputePreds();
  InnermostByBlock.assign(F.size(), nullptr);

  // Find back edges and group them by header so that a header with several
  // latches produces a single loop. Keyed by block number to keep loop
  // discovery order deterministic.
  std::map<unsigned, std::vector<BasicBlock *>> LatchesByHeader;
  for (BasicBlock *BB : reversePostOrder(F))
    for (BasicBlock *Succ : BB->successors())
      if (DT.dominates(Succ, BB))
        LatchesByHeader[Succ->number()].push_back(BB);

  // Build loop bodies: walk predecessors backwards from each latch until
  // the header. Nesting is assigned afterwards via containment, so the
  // discovery order does not affect correctness.
  for (auto &[HeaderNumber, Latches] : LatchesByHeader) {
    BasicBlock *Header = F.block(HeaderNumber);
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Latches = Latches;
    L->BlockSet.assign(F.size(), false);
    L->BlockSet[Header->number()] = true;
    L->Blocks.push_back(Header);
    std::vector<BasicBlock *> Worklist;
    for (BasicBlock *Latch : Latches)
      if (!L->BlockSet[Latch->number()]) {
        L->BlockSet[Latch->number()] = true;
        L->Blocks.push_back(Latch);
        Worklist.push_back(Latch);
      }
    while (!Worklist.empty()) {
      BasicBlock *BB = Worklist.back();
      Worklist.pop_back();
      for (BasicBlock *Pred : BB->predecessors()) {
        if (!DT.isReachable(Pred) || L->BlockSet[Pred->number()])
          continue;
        L->BlockSet[Pred->number()] = true;
        L->Blocks.push_back(Pred);
        Worklist.push_back(Pred);
      }
    }
    Storage.push_back(std::move(L));
  }

  // Establish nesting: the parent of L is the smallest loop strictly
  // containing L's header (other than L itself).
  for (auto &L : Storage)
    AllLoops.push_back(L.get());
  std::sort(AllLoops.begin(), AllLoops.end(),
            [](const Loop *A, const Loop *B) {
              if (A->blocks().size() != B->blocks().size())
                return A->blocks().size() > B->blocks().size();
              return A->header()->number() < B->header()->number();
            });
  for (Loop *L : AllLoops) {
    Loop *Best = nullptr;
    for (Loop *Candidate : AllLoops) {
      if (Candidate == L || !Candidate->contains(L->header()))
        continue;
      if (!Best || Candidate->blocks().size() < Best->blocks().size())
        Best = Candidate;
    }
    L->Parent = Best;
    if (Best)
      Best->SubLoops.push_back(L);
    else
      TopLevel.push_back(L);
  }

  // Innermost loop per block: the smallest loop containing it.
  for (Loop *L : AllLoops)
    for (BasicBlock *BB : L->blocks()) {
      Loop *&Slot = InnermostByBlock[BB->number()];
      if (!Slot || L->blocks().size() < Slot->blocks().size())
        Slot = L;
    }
}

Loop *LoopInfo::loopFor(const BasicBlock *BB) const {
  unsigned N = BB->number();
  return N < InnermostByBlock.size() ? InnermostByBlock[N] : nullptr;
}

Loop *LoopInfo::loopWithHeader(const BasicBlock *BB) const {
  for (Loop *L : AllLoops)
    if (L->header() == BB)
      return L;
  return nullptr;
}
