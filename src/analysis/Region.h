//===- Region.h - Prediction-region discovery ------------------*- C++ -*-===//
///
/// \file
/// Locates `predict` directives (Section 4.1) and materializes their
/// prediction regions: the region starts at the block containing the
/// directive and "ends where all threads are no longer able to reach the
/// label". A block is in the region iff it is reachable from the start and
/// can still reach the label.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_ANALYSIS_REGION_H
#define SIMTSR_ANALYSIS_REGION_H

#include "ir/Function.h"

#include <vector>

namespace simtsr {

struct PredictionRegion {
  BasicBlock *Start;   ///< Block containing the predict directive.
  size_t PredictIndex; ///< Instruction index of the directive.
  BasicBlock *Label;   ///< User-chosen reconvergence point.
  std::vector<bool> InRegion; ///< Indexed by block number.
  /// Edges (From in region, To outside) through which threads leave.
  std::vector<std::pair<BasicBlock *, BasicBlock *>> ExitEdges;

  bool contains(const BasicBlock *BB) const {
    unsigned N = BB->number();
    return N < InRegion.size() && InRegion[N];
  }
};

/// Discovers every prediction region in \p F (one per predict directive,
/// in layout order). Renumbers blocks.
std::vector<PredictionRegion> findPredictionRegions(Function &F);

} // namespace simtsr

#endif // SIMTSR_ANALYSIS_REGION_H
