//===- CallGraph.cpp - Module call graph -------------------------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>
#include <set>

using namespace simtsr;

const std::vector<Function *> CallGraph::EmptyFuncs;
const std::vector<CallSite> CallGraph::EmptySites;

CallGraph::CallGraph(Module &M) : M(M) {
  for (const auto &F : M) {
    for (BasicBlock *BB : *F) {
      for (size_t I = 0; I < BB->size(); ++I) {
        const Instruction &Inst = BB->inst(I);
        if (Inst.opcode() != Opcode::Call)
          continue;
        Function *Callee = Inst.operand(0).getFunc();
        auto &Outgoing = Callees[F.get()];
        if (std::find(Outgoing.begin(), Outgoing.end(), Callee) ==
            Outgoing.end())
          Outgoing.push_back(Callee);
        auto &Incoming = Callers[Callee];
        if (std::find(Incoming.begin(), Incoming.end(), F.get()) ==
            Incoming.end())
          Incoming.push_back(F.get());
        Sites[Callee].push_back({F.get(), BB, I, Callee});
      }
    }
  }
}

const std::vector<Function *> &CallGraph::callees(Function *F) const {
  auto It = Callees.find(F);
  return It == Callees.end() ? EmptyFuncs : It->second;
}

const std::vector<Function *> &CallGraph::callers(Function *F) const {
  auto It = Callers.find(F);
  return It == Callers.end() ? EmptyFuncs : It->second;
}

const std::vector<CallSite> &CallGraph::callSitesOf(Function *Callee) const {
  auto It = Sites.find(Callee);
  return It == Sites.end() ? EmptySites : It->second;
}

std::vector<Function *> CallGraph::bottomUpOrder() const {
  std::vector<Function *> Order;
  std::set<Function *> Done;
  // Iterate until no progress: emit functions whose callees are all done.
  // Functions stuck in cycles are appended in module order at the end.
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (const auto &F : M) {
      if (Done.count(F.get()))
        continue;
      bool Ready = true;
      for (Function *Callee : callees(F.get()))
        if (Callee != F.get() && !Done.count(Callee))
          Ready = false;
      if (Ready) {
        Order.push_back(F.get());
        Done.insert(F.get());
        Progress = true;
      }
    }
  }
  for (const auto &F : M)
    if (!Done.count(F.get()))
      Order.push_back(F.get());
  return Order;
}

bool CallGraph::isRecursive() const {
  // DFS cycle detection with the classic white/grey/black colouring.
  enum class Colour { White, Grey, Black };
  std::map<Function *, Colour> Colours;
  for (const auto &F : M)
    Colours[F.get()] = Colour::White;

  // Recursive lambda via explicit stack of (function, next-callee-index).
  for (const auto &Root : M) {
    if (Colours[Root.get()] != Colour::White)
      continue;
    std::vector<std::pair<Function *, size_t>> Stack = {{Root.get(), 0}};
    Colours[Root.get()] = Colour::Grey;
    while (!Stack.empty()) {
      auto &[F, Next] = Stack.back();
      const auto &Out = callees(F);
      if (Next < Out.size()) {
        Function *Callee = Out[Next++];
        if (Colours[Callee] == Colour::Grey)
          return true;
        if (Colours[Callee] == Colour::White) {
          Colours[Callee] = Colour::Grey;
          Stack.push_back({Callee, 0});
        }
        continue;
      }
      Colours[F] = Colour::Black;
      Stack.pop_back();
    }
  }
  return false;
}
