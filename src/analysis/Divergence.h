//===- Divergence.h - Thread-divergence analysis ---------------*- C++ -*-===//
///
/// \file
/// Conservative divergence analysis: marks registers whose values may
/// differ between threads that execute an instruction together, and the
/// branches conditioned on them. Used by the baseline PDOM synchronization
/// pass (only divergent branches need reconvergence barriers) and by the
/// automatic-detection heuristics of Section 4.5.
///
/// Sources of divergence: tid/laneid, the per-thread random stream,
/// atomics' return values, arrived-count queries, loads from divergent
/// addresses, calls whose callee is divergent, and — via control
/// dependence — any definition inside the influence region of a divergent
/// branch.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_ANALYSIS_DIVERGENCE_H
#define SIMTSR_ANALYSIS_DIVERGENCE_H

#include "analysis/Dominators.h"

#include <map>
#include <vector>

namespace simtsr {

class Module;

/// Per-function divergence facts. Parameters are treated as divergent by
/// default (safe when call sites are unknown); the module-level driver
/// refines this with call-graph summaries.
class DivergenceAnalysis {
public:
  struct Options {
    /// Treat every function parameter as potentially divergent.
    bool ParamsDivergent = true;
    /// Callee summaries: true = the callee's return value is divergent
    /// regardless of arguments. Callees not in the map fall back to
    /// "divergent" conservatism.
    const std::map<const Function *, bool> *CalleeReturnsDivergent = nullptr;
  };

  DivergenceAnalysis(Function &F, const PostDominatorTree &PDT,
                     Options Opts);
  DivergenceAnalysis(Function &F, const PostDominatorTree &PDT)
      : DivergenceAnalysis(F, PDT, Options{}) {}

  bool isDivergentReg(unsigned Reg) const {
    return Reg < DivergentRegs.size() && DivergentRegs[Reg];
  }

  /// True when \p BB ends in a conditional branch on a divergent value.
  bool isDivergentBranch(const BasicBlock *BB) const;

  /// True when some `ret` returns a divergent value.
  bool returnsDivergent() const { return ReturnsDivergent; }

  /// True when the function contains any intrinsic divergence source
  /// (tid/rand/atomic/...), ignoring parameters.
  bool hasDivergenceSources() const { return HasSources; }

private:
  bool operandDivergent(const Operand &O) const;
  bool instructionProducesDivergence(const Instruction &I) const;
  void taintControlDependent(Function &F, const PostDominatorTree &PDT,
                             const BasicBlock *Branch,
                             std::vector<bool> &BlockTainted);

  Options Opts;
  std::vector<bool> DivergentRegs;
  std::vector<bool> DivergentBranchBlocks; ///< Indexed by block number.
  bool ReturnsDivergent = false;
  bool HasSources = false;
};

/// Computes per-function "returns divergent" summaries bottom-up over the
/// call graph, then exposes refined per-function analyses.
class ModuleDivergenceInfo {
public:
  explicit ModuleDivergenceInfo(Module &M);
  ~ModuleDivergenceInfo();

  const DivergenceAnalysis &forFunction(const Function *F) const;

private:
  std::map<const Function *, bool> ReturnSummaries;
  std::map<const Function *, std::unique_ptr<DivergenceAnalysis>> PerFunction;
};

} // namespace simtsr

#endif // SIMTSR_ANALYSIS_DIVERGENCE_H
