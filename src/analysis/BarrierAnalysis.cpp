//===- BarrierAnalysis.cpp - Joined-barrier and liveness analyses -----------===//

#include "analysis/BarrierAnalysis.h"

using namespace simtsr;

static uint32_t barrierBit(const Instruction &I) {
  return 1u << I.barrierId();
}

uint32_t simtsr::barriereffect::genJoined(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::JoinBarrier:
  case Opcode::RejoinBarrier:
    return barrierBit(I);
  default:
    return 0;
  }
}

uint32_t simtsr::barriereffect::killJoined(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::WaitBarrier:
  case Opcode::CancelBarrier:
    return barrierBit(I);
  default:
    return 0;
  }
}

uint32_t simtsr::barriereffect::genLive(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::WaitBarrier:
  case Opcode::SoftWait:
    return barrierBit(I);
  default:
    return 0;
  }
}

uint32_t simtsr::barriereffect::killLive(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::JoinBarrier:
  case Opcode::RejoinBarrier:
  case Opcode::CancelBarrier:
    return barrierBit(I);
  default:
    return 0;
  }
}

// -- JoinedBarrierAnalysis ---------------------------------------------------

std::vector<BlockTransfer> JoinedBarrierAnalysis::summarize(Function &F) {
  F.renumberBlocks();
  std::vector<BlockTransfer> Transfers(F.size());
  for (BasicBlock *BB : F) {
    BlockTransfer &T = Transfers[BB->number()];
    for (const Instruction &I : BB->instructions())
      composeTransfer(T, barriereffect::genJoined(I),
                      barriereffect::killJoined(I));
  }
  return Transfers;
}

JoinedBarrierAnalysis::JoinedBarrierAnalysis(Function &F)
    : Solver(F, DataflowDirection::Forward, summarize(F)) {}

uint32_t JoinedBarrierAnalysis::before(const BasicBlock *BB,
                                       size_t Index) const {
  uint32_t State = in(BB);
  for (size_t I = 0; I < Index; ++I) {
    const Instruction &Inst = BB->inst(I);
    State = (State & ~barriereffect::killJoined(Inst)) |
            barriereffect::genJoined(Inst);
  }
  return State;
}

uint32_t JoinedBarrierAnalysis::after(const BasicBlock *BB,
                                      size_t Index) const {
  return before(BB, Index + 1);
}

// -- BarrierLivenessAnalysis --------------------------------------------------

std::vector<BlockTransfer> BarrierLivenessAnalysis::summarize(Function &F) {
  F.renumberBlocks();
  std::vector<BlockTransfer> Transfers(F.size());
  for (BasicBlock *BB : F) {
    BlockTransfer &T = Transfers[BB->number()];
    // Backward problem: compose in reverse execution order.
    for (size_t I = BB->size(); I > 0; --I) {
      const Instruction &Inst = BB->inst(I - 1);
      composeTransfer(T, barriereffect::genLive(Inst),
                      barriereffect::killLive(Inst));
    }
  }
  return Transfers;
}

BarrierLivenessAnalysis::BarrierLivenessAnalysis(Function &F)
    : Solver(F, DataflowDirection::Backward, summarize(F)) {}

uint32_t BarrierLivenessAnalysis::liveAfter(const BasicBlock *BB,
                                            size_t Index) const {
  uint32_t State = liveOut(BB);
  for (size_t I = BB->size(); I > Index + 1; --I) {
    const Instruction &Inst = BB->inst(I - 1);
    State = (State & ~barriereffect::killLive(Inst)) |
            barriereffect::genLive(Inst);
  }
  return State;
}

uint32_t BarrierLivenessAnalysis::liveBefore(const BasicBlock *BB,
                                             size_t Index) const {
  assert(Index < BB->size() && "instruction index out of range");
  uint32_t State = liveAfter(BB, Index);
  const Instruction &Inst = BB->inst(Index);
  return (State & ~barriereffect::killLive(Inst)) |
         barriereffect::genLive(Inst);
}

// -- BarrierConflictAnalysis ---------------------------------------------------

BarrierConflictAnalysis::BarrierConflictAnalysis(Function &F) {
  JoinedBarrierAnalysis Joined(F);
  // Enumerate instruction-boundary program points: one point after each
  // instruction of each block, plus one at each block entry.
  size_t NumPoints = 0;
  for (BasicBlock *BB : F)
    NumPoints += BB->size() + 1;

  RangePoints.assign(NumBarrierRegisters,
                     std::vector<bool>(NumPoints, false));
  size_t Point = 0;
  for (BasicBlock *BB : F) {
    uint32_t State = Joined.in(BB);
    for (size_t I = 0; I <= BB->size(); ++I) {
      if (I > 0) {
        const Instruction &Inst = BB->inst(I - 1);
        State = (State & ~barriereffect::killJoined(Inst)) |
                barriereffect::genJoined(Inst);
      }
      for (unsigned B = 0; B < NumBarrierRegisters; ++B)
        if (State & (1u << B))
          RangePoints[B][Point] = true;
      ++Point;
    }
  }
}

bool BarrierConflictAnalysis::conflict(unsigned BarrierA,
                                       unsigned BarrierB) const {
  assert(BarrierA < NumBarrierRegisters && BarrierB < NumBarrierRegisters &&
         "barrier id out of range");
  if (BarrierA == BarrierB)
    return false;
  const auto &A = RangePoints[BarrierA];
  const auto &B = RangePoints[BarrierB];
  bool Overlap = false, AOnly = false, BOnly = false;
  for (size_t I = 0; I < A.size(); ++I) {
    Overlap |= A[I] && B[I];
    AOnly |= A[I] && !B[I];
    BOnly |= !A[I] && B[I];
  }
  return Overlap && AOnly && BOnly;
}

std::vector<std::pair<unsigned, unsigned>>
BarrierConflictAnalysis::conflictingPairs() const {
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (unsigned A = 0; A < NumBarrierRegisters; ++A)
    for (unsigned B = A + 1; B < NumBarrierRegisters; ++B)
      if (conflict(A, B))
        Pairs.push_back({A, B});
  return Pairs;
}

size_t BarrierConflictAnalysis::rangeSize(unsigned Barrier) const {
  assert(Barrier < NumBarrierRegisters && "barrier id out of range");
  size_t Count = 0;
  for (bool Set : RangePoints[Barrier])
    Count += Set;
  return Count;
}
