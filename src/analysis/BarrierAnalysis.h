//===- BarrierAnalysis.h - Joined-barrier and liveness analyses -*- C++ -*-===//
///
/// \file
/// The two dataflow analyses of Section 4.2.1, at block granularity with
/// instruction-level replay:
///
///  * Joined-barrier analysis (Equation 1, forward): a barrier is joined at
///    a point P if some path from function entry to P contains a
///    JoinBarrier/RejoinBarrier not followed by a WaitBarrier (or
///    CancelBarrier).
///  * Barrier liveness (Equation 2, backward): a barrier is live at P if a
///    WaitBarrier/SoftWait is reachable from P with no intervening
///    Join/Rejoin (def) or Cancel.
///
/// Also provides the non-inclusive live-range-overlap conflict test of
/// Section 4.3.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_ANALYSIS_BARRIERANALYSIS_H
#define SIMTSR_ANALYSIS_BARRIERANALYSIS_H

#include "analysis/Dataflow.h"

#include <optional>

namespace simtsr {

/// Instruction-level gen/kill masks shared by both analyses.
namespace barriereffect {
uint32_t genJoined(const Instruction &I);
uint32_t killJoined(const Instruction &I);
uint32_t genLive(const Instruction &I);
uint32_t killLive(const Instruction &I);
} // namespace barriereffect

/// Equation 1: which barriers may be joined-but-uncleared at each point.
class JoinedBarrierAnalysis {
public:
  explicit JoinedBarrierAnalysis(Function &F);

  uint32_t in(const BasicBlock *BB) const { return Solver.in(BB); }
  uint32_t out(const BasicBlock *BB) const { return Solver.out(BB); }

  /// Joined set immediately before executing instruction \p Index of \p BB.
  uint32_t before(const BasicBlock *BB, size_t Index) const;
  /// Joined set immediately after executing instruction \p Index of \p BB.
  uint32_t after(const BasicBlock *BB, size_t Index) const;

private:
  static std::vector<BlockTransfer> summarize(Function &F);
  BitDataflow Solver;
};

/// Equation 2: which barriers have a reachable wait (are live).
class BarrierLivenessAnalysis {
public:
  explicit BarrierLivenessAnalysis(Function &F);

  uint32_t liveIn(const BasicBlock *BB) const { return Solver.in(BB); }
  uint32_t liveOut(const BasicBlock *BB) const { return Solver.out(BB); }

  /// Live set immediately before executing instruction \p Index of \p BB.
  uint32_t liveBefore(const BasicBlock *BB, size_t Index) const;
  /// Live set immediately after executing instruction \p Index of \p BB.
  uint32_t liveAfter(const BasicBlock *BB, size_t Index) const;

private:
  static std::vector<BlockTransfer> summarize(Function &F);
  BitDataflow Solver;
};

/// Section 4.3 conflict detection. Two barriers conflict when their joined
/// ranges (join until cleared by wait or cancel) overlap non-inclusively —
/// neither range is a subset of the other.
class BarrierConflictAnalysis {
public:
  explicit BarrierConflictAnalysis(Function &F);

  bool conflict(unsigned BarrierA, unsigned BarrierB) const;

  /// All conflicting pairs (A < B).
  std::vector<std::pair<unsigned, unsigned>> conflictingPairs() const;

  /// Number of program points where \p Barrier is joined; 0 means unused.
  size_t rangeSize(unsigned Barrier) const;

private:
  // RangePoints[b] marks the global instruction-boundary points where
  // barrier b is joined-but-uncleared.
  std::vector<std::vector<bool>> RangePoints;
};

} // namespace simtsr

#endif // SIMTSR_ANALYSIS_BARRIERANALYSIS_H
