//===- Dominators.cpp - (Post-)dominator trees ------------------------------===//

#include "analysis/Dominators.h"

#include "ir/Opcode.h"

#include <cassert>

using namespace simtsr;

DominatorTreeBase::DominatorTreeBase(Function &F, bool Post)
    : F(F), Post(Post) {
  F.recomputePreds();
  const unsigned N = static_cast<unsigned>(F.size());
  VirtualRoot = N;
  Idom.assign(N + 1, Undef);
  Depth.assign(N + 1, 0);
  OrderIndex.assign(N + 1, Undef);
  OrderIndex[VirtualRoot] = 0;

  auto analysisSuccs = [&](BasicBlock *BB) {
    return Post ? BB->predecessors() : BB->successors();
  };
  auto analysisPreds = [&](BasicBlock *BB) {
    return Post ? BB->successors() : BB->predecessors();
  };

  // Roots of the analysis graph.
  std::vector<BasicBlock *> Roots;
  if (Post) {
    for (BasicBlock *BB : F)
      if (BB->hasTerminator() && BB->terminator().opcode() == Opcode::Ret)
        Roots.push_back(BB);
  } else if (!F.empty()) {
    Roots.push_back(F.entry());
  }

  // Postorder DFS over the analysis graph from all roots.
  std::vector<BasicBlock *> PostOrder;
  std::vector<bool> Visited(N, false);
  struct Frame {
    BasicBlock *BB;
    std::vector<BasicBlock *> Succs;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  for (BasicBlock *Root : Roots) {
    if (Visited[Root->number()])
      continue;
    Visited[Root->number()] = true;
    Stack.push_back({Root, analysisSuccs(Root)});
    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      if (Top.Next < Top.Succs.size()) {
        BasicBlock *S = Top.Succs[Top.Next++];
        if (!Visited[S->number()]) {
          Visited[S->number()] = true;
          Stack.push_back({S, analysisSuccs(S)});
        }
        continue;
      }
      PostOrder.push_back(Top.BB);
      Stack.pop_back();
    }
  }

  std::vector<BasicBlock *> RPO(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0; I < RPO.size(); ++I)
    OrderIndex[RPO[I]->number()] = I + 1; // Virtual root owns position 0.

  // Cooper-Harvey-Kennedy fixpoint. Roots hang off the virtual root; in the
  // forward direction the single entry also uses it as its (hidden) idom.
  std::vector<bool> IsRoot(N, false);
  for (BasicBlock *Root : Roots) {
    IsRoot[Root->number()] = true;
    Idom[Root->number()] = VirtualRoot;
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      unsigned NewIdom = IsRoot[BB->number()] ? VirtualRoot : Undef;
      for (BasicBlock *Pred : analysisPreds(BB)) {
        unsigned P = Pred->number();
        if (OrderIndex[P] == Undef || Idom[P] == Undef)
          continue; // Unreachable or not yet processed.
        NewIdom = NewIdom == Undef ? P : intersect(NewIdom, P);
      }
      if (NewIdom != Undef && Idom[BB->number()] != NewIdom) {
        Idom[BB->number()] = NewIdom;
        Changed = true;
      }
    }
  }

  // Depths: process in RPO so idoms are already assigned a depth.
  Depth[VirtualRoot] = 0;
  for (BasicBlock *BB : RPO) {
    unsigned I = BB->number();
    assert(Idom[I] != Undef && "reachable block without idom");
    Depth[I] = Depth[Idom[I]] + 1;
  }
}

unsigned DominatorTreeBase::intersect(unsigned A, unsigned B) const {
  while (A != B) {
    while (OrderIndex[A] > OrderIndex[B])
      A = Idom[A];
    while (OrderIndex[B] > OrderIndex[A])
      B = Idom[B];
  }
  return A;
}

BasicBlock *DominatorTreeBase::idom(const BasicBlock *BB) const {
  unsigned I = BB->number();
  if (Idom[I] == Undef || Idom[I] == VirtualRoot)
    return nullptr;
  return F.block(Idom[I]);
}

bool DominatorTreeBase::isReachable(const BasicBlock *BB) const {
  return OrderIndex[BB->number()] != Undef;
}

bool DominatorTreeBase::dominates(const BasicBlock *A,
                                  const BasicBlock *B) const {
  if (A == B)
    return true;
  if (!isReachable(A) || !isReachable(B))
    return false;
  unsigned AN = A->number(), BN = B->number();
  while (Depth[BN] > Depth[AN])
    BN = Idom[BN];
  return AN == BN;
}

BasicBlock *
DominatorTreeBase::nearestCommonDominator(const BasicBlock *A,
                                          const BasicBlock *B) const {
  if (!A || !B || !isReachable(A) || !isReachable(B))
    return nullptr;
  unsigned AN = A->number(), BN = B->number();
  while (AN != BN) {
    if (Depth[AN] < Depth[BN])
      BN = Idom[BN];
    else
      AN = Idom[AN];
  }
  return AN == VirtualRoot ? nullptr : F.block(AN);
}

std::vector<BasicBlock *>
DominatorTreeBase::children(const BasicBlock *BB) const {
  std::vector<BasicBlock *> Kids;
  for (BasicBlock *Other : F)
    if (Other != BB && Idom[Other->number()] == BB->number())
      Kids.push_back(Other);
  return Kids;
}
