//===- CallGraph.h - Module call graph -------------------------*- C++ -*-===//
///
/// \file
/// Call graph over the module's functions; supports the bottom-up barrier
/// propagation of the interprocedural pass (Section 4.4) and divergence
/// summaries.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_ANALYSIS_CALLGRAPH_H
#define SIMTSR_ANALYSIS_CALLGRAPH_H

#include "ir/Module.h"

#include <map>
#include <vector>

namespace simtsr {

/// One call instruction's location.
struct CallSite {
  Function *Caller;
  BasicBlock *Block;
  size_t Index; ///< Instruction index within the block.
  Function *Callee;
};

class CallGraph {
public:
  explicit CallGraph(Module &M);

  const std::vector<Function *> &callees(Function *F) const;
  const std::vector<Function *> &callers(Function *F) const;
  const std::vector<CallSite> &callSitesOf(Function *Callee) const;

  /// Functions in bottom-up order: every callee precedes its callers.
  /// Only meaningful for acyclic call graphs; cycles keep module order
  /// within the cycle.
  std::vector<Function *> bottomUpOrder() const;

  /// True if any function can (transitively) call itself.
  bool isRecursive() const;

private:
  Module &M;
  std::map<Function *, std::vector<Function *>> Callees;
  std::map<Function *, std::vector<Function *>> Callers;
  std::map<Function *, std::vector<CallSite>> Sites;
  static const std::vector<Function *> EmptyFuncs;
  static const std::vector<CallSite> EmptySites;
};

} // namespace simtsr

#endif // SIMTSR_ANALYSIS_CALLGRAPH_H
