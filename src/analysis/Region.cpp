//===- Region.cpp - Prediction-region discovery -------------------------------===//

#include "analysis/Region.h"

#include "ir/CFGUtils.h"

using namespace simtsr;

std::vector<PredictionRegion> simtsr::findPredictionRegions(Function &F) {
  F.recomputePreds();
  std::vector<PredictionRegion> Regions;
  for (BasicBlock *BB : F) {
    for (size_t I = 0; I < BB->size(); ++I) {
      const Instruction &Inst = BB->inst(I);
      if (Inst.opcode() != Opcode::Predict)
        continue;
      PredictionRegion R;
      R.Start = BB;
      R.PredictIndex = I;
      R.Label = Inst.operand(0).getBlock();

      std::vector<bool> FromStart = blocksReachableFrom(F, R.Start);
      std::vector<bool> ToLabel = blocksReaching(F, R.Label);
      R.InRegion.assign(F.size(), false);
      for (size_t N = 0; N < F.size(); ++N)
        R.InRegion[N] = FromStart[N] && ToLabel[N];
      // The start block anchors the region even when the label is only
      // conditionally reachable from it.
      R.InRegion[R.Start->number()] = true;

      for (BasicBlock *From : F) {
        if (!R.InRegion[From->number()])
          continue;
        for (BasicBlock *To : From->successors())
          if (!R.InRegion[To->number()])
            R.ExitEdges.push_back({From, To});
      }
      Regions.push_back(std::move(R));
    }
  }
  return Regions;
}
