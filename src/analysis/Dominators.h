//===- Dominators.h - (Post-)dominator trees -------------------*- C++ -*-===//
///
/// \file
/// Dominator and post-dominator trees via the Cooper-Harvey-Kennedy
/// iterative algorithm over reverse post order. The post-dominator tree
/// uses a virtual exit that post-dominates every `ret` block; a null idom
/// therefore means "the (virtual) root" for reachable blocks.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_ANALYSIS_DOMINATORS_H
#define SIMTSR_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <vector>

namespace simtsr {

/// Shared implementation for dominance in either CFG direction.
class DominatorTreeBase {
public:
  /// \p Post selects post-dominance (analysis on the reversed CFG).
  DominatorTreeBase(Function &F, bool Post);

  /// Immediate dominator of \p BB, or nullptr when \p BB is the root, is
  /// unreachable, or (post-dominance) is immediately dominated by the
  /// virtual exit.
  BasicBlock *idom(const BasicBlock *BB) const;

  /// Reflexive dominance. Unreachable blocks dominate nothing and are
  /// dominated by nothing (except themselves).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  bool strictlyDominates(const BasicBlock *A, const BasicBlock *B) const {
    return A != B && dominates(A, B);
  }

  /// Nearest common dominator, or nullptr when it is the virtual root
  /// (post-dominance with diverging exits) or an input is unreachable.
  BasicBlock *nearestCommonDominator(const BasicBlock *A,
                                     const BasicBlock *B) const;

  /// True when \p BB participates in the tree (reachable from the root(s)).
  bool isReachable(const BasicBlock *BB) const;

  /// Children of \p BB in the dominator tree.
  std::vector<BasicBlock *> children(const BasicBlock *BB) const;

private:
  unsigned intersect(unsigned A, unsigned B) const;

  Function &F;
  bool Post;
  // Indexed by block number; VirtualRoot == F.size() is the forward entry's
  // self-index or the post-dominance virtual exit.
  unsigned VirtualRoot;
  static constexpr unsigned Undef = ~0u;
  std::vector<unsigned> Idom;  ///< Block number -> idom number (or Undef).
  std::vector<unsigned> Depth; ///< Tree depth; root = 0.
  std::vector<unsigned> OrderIndex; ///< Block number -> RPO position.
};

/// Forward dominance: the entry block is the root.
class DominatorTree : public DominatorTreeBase {
public:
  explicit DominatorTree(Function &F) : DominatorTreeBase(F, false) {}
};

/// Post-dominance with a virtual exit over all `ret` blocks.
class PostDominatorTree : public DominatorTreeBase {
public:
  explicit PostDominatorTree(Function &F) : DominatorTreeBase(F, true) {}
};

} // namespace simtsr

#endif // SIMTSR_ANALYSIS_DOMINATORS_H
