//===- Dataflow.h - Generic bitmask dataflow solver ------------*- C++ -*-===//
///
/// \file
/// Iterative worklist solver for union-meet dataflow problems over a small
/// bitmask domain (barrier registers fit in 16 bits). Both barrier analyses
/// of Section 4.2.1 instantiate this.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_ANALYSIS_DATAFLOW_H
#define SIMTSR_ANALYSIS_DATAFLOW_H

#include "ir/CFGUtils.h"
#include "ir/Function.h"

#include <cstdint>
#include <vector>

namespace simtsr {

enum class DataflowDirection { Forward, Backward };

/// Per-block transfer function OUT = (IN & ~Kill) | Gen (forward), or
/// IN = (OUT & ~Kill) | Gen (backward).
struct BlockTransfer {
  uint32_t Gen = 0;
  uint32_t Kill = 0;
};

/// Union-meet bitmask dataflow. Solutions are stable (RPO iteration until
/// fixpoint) and conservative for unreachable blocks (boundary value).
class BitDataflow {
public:
  /// \p Transfers is indexed by block number and must cover every block.
  BitDataflow(Function &F, DataflowDirection Dir,
              std::vector<BlockTransfer> Transfers);

  uint32_t in(const BasicBlock *BB) const { return In[BB->number()]; }
  uint32_t out(const BasicBlock *BB) const { return Out[BB->number()]; }

private:
  std::vector<uint32_t> In;
  std::vector<uint32_t> Out;
};

/// Composes an instruction-level (gen, kill) pair into a running block
/// transfer, in execution order: later gens override earlier kills.
inline void composeTransfer(BlockTransfer &T, uint32_t Gen, uint32_t Kill) {
  T.Gen = (T.Gen & ~Kill) | Gen;
  T.Kill = (T.Kill & ~Gen) | Kill;
}

} // namespace simtsr

#endif // SIMTSR_ANALYSIS_DATAFLOW_H
