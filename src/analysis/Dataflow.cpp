//===- Dataflow.cpp - Generic bitmask dataflow solver -----------------------===//

#include "analysis/Dataflow.h"

#include <algorithm>
#include <cassert>

using namespace simtsr;

BitDataflow::BitDataflow(Function &F, DataflowDirection Dir,
                         std::vector<BlockTransfer> Transfers) {
  assert(Transfers.size() == F.size() && "one transfer per block required");
  F.recomputePreds();
  In.assign(F.size(), 0);
  Out.assign(F.size(), 0);

  std::vector<BasicBlock *> Order = reversePostOrder(F);
  if (Dir == DataflowDirection::Backward)
    std::reverse(Order.begin(), Order.end());

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : Order) {
      unsigned N = BB->number();
      const BlockTransfer &T = Transfers[N];
      if (Dir == DataflowDirection::Forward) {
        uint32_t NewIn = 0;
        for (BasicBlock *Pred : BB->predecessors())
          NewIn |= Out[Pred->number()];
        uint32_t NewOut = (NewIn & ~T.Kill) | T.Gen;
        if (NewIn != In[N] || NewOut != Out[N]) {
          In[N] = NewIn;
          Out[N] = NewOut;
          Changed = true;
        }
      } else {
        uint32_t NewOut = 0;
        for (BasicBlock *Succ : BB->successors())
          NewOut |= In[Succ->number()];
        uint32_t NewIn = (NewOut & ~T.Kill) | T.Gen;
        if (NewIn != In[N] || NewOut != Out[N]) {
          In[N] = NewIn;
          Out[N] = NewOut;
          Changed = true;
        }
      }
    }
  }
}
