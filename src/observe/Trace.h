//===- Trace.h - Simulator event tracing and digests -----------*- C++ -*-===//
///
/// \file
/// Event-level observability for the warp simulator: every scheduler pick
/// (issue group) and every barrier transition (join/rejoin/cancel/wait/
/// soft-release/yield) can be streamed into a TraceSink. Two sinks ship:
///
///  - TraceDigester folds the stream into a stable 64-bit FNV-1a digest.
///    The digest hashes names and lane masks, never pointers or clocks, so
///    it is identical across platforms, thread-pool sizes and repeated
///    runs — a far sharper regression oracle than the memory checksum
///    (which only sees the final state, not how the schedule got there).
///
///  - TraceRecorder keeps the events themselves (bounded) for export as
///    Chrome trace-event JSON (loadable in chrome://tracing / Perfetto)
///    and for first-divergence diffing between two runs.
///
/// The schema and digest definition are documented in
/// docs/OBSERVABILITY.md; golden digests live in tests/observe.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_OBSERVE_TRACE_H
#define SIMTSR_OBSERVE_TRACE_H

#include "support/Hash.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace simtsr {
class Function;
class BasicBlock;
} // namespace simtsr

namespace simtsr::observe {

enum class TraceEventKind : uint8_t {
  Issue,          ///< Scheduler issued one instruction for a lane group.
  BarrierJoin,    ///< JoinBarrier executed (adds participants).
  BarrierRejoin,  ///< RejoinBarrier executed (re-adds along a side path).
  BarrierCancel,  ///< CancelBarrier executed (drops participants).
  BarrierWait,    ///< WaitBarrier arrival (lanes block or release).
  BarrierSoftWait,///< SoftWait arrival (threshold semantics).
  WarpSyncArrive, ///< WarpSync arrival.
  BarrierYield,   ///< Forward-progress yield released blocked lanes.
  LanesExited,    ///< Thread exit implicitly released barrier waiters.
  ProgressForced, ///< Bounded progress model forced a starved lane's
                  ///< group (appended last: earlier kinds keep their
                  ///< encoded values, so fair digests are unchanged).
};

/// \returns a stable name for \p K ("issue", "barrier_join", ...).
const char *getTraceEventKindName(TraceEventKind K);

struct TraceEvent {
  TraceEventKind Kind = TraceEventKind::Issue;
  /// Issue events: where the group issued from. The pointees must outlive
  /// any sink holding events (digesting hashes the names immediately).
  const Function *F = nullptr;
  const BasicBlock *BB = nullptr;
  uint32_t Index = 0;     ///< Instruction index within BB (Issue).
  uint8_t BarrierId = 0;  ///< Barrier register (barrier events).
  uint64_t Lanes = 0;     ///< Lanes the event acted on.
  uint64_t Released = 0;  ///< Lanes unblocked by this event.
  uint32_t Latency = 0;   ///< Issue cost in cycles (Issue events).
  uint64_t Slot = 0;      ///< Issue slot count when the event fired.
  uint64_t Cycle = 0;     ///< Simulated cycle when the event fired.
};

/// Renders \p E for diagnostics, e.g.
/// "issue @kernel/bb2[1] lanes=0x00000000ffffffff".
std::string describeTraceEvent(const TraceEvent &E);

class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void onEvent(const TraceEvent &E) = 0;
};

/// Streaming FNV-1a-64 over the canonical encoding of each event (kind,
/// function/block names, instruction index, lane masks, latency — never
/// Slot/Cycle, which are implied by event order, and never pointers).
class TraceDigester : public TraceSink {
public:
  void onEvent(const TraceEvent &E) override;
  uint64_t digest() const { return Hash; }
  void reset();

private:
  void mix(uint64_t V) { Hash = fnv1aMix(Hash, V); }
  uint64_t locationHash(const Function *F, const BasicBlock *BB);

  uint64_t Hash = FnvBasis;
  /// Name-hash per block, keyed by identity — names are stable across
  /// runs, pointers are not, so the digest hashes "func/block" strings
  /// (memoized here because issues are by far the hottest event).
  std::unordered_map<const BasicBlock *, uint64_t> BlockHashes;
};

/// Ordered fold of per-warp digests into a launch digest. Warp order is
/// significant: reduceInOrder folds warp 0 first, making the grid digest
/// identical across GridMode::Parallel and Sequential.
uint64_t combineTraceDigests(uint64_t Acc, uint64_t WarpDigest);

/// Keeps events for export/diffing, up to \p MaxEvents (the digest keeps
/// counting past the cap, so digest() stays exact even when truncated()).
class TraceRecorder : public TraceSink {
public:
  explicit TraceRecorder(size_t MaxEvents = 1u << 20);
  void onEvent(const TraceEvent &E) override;
  const std::vector<TraceEvent> &events() const { return Events; }
  bool truncated() const { return Truncated; }
  uint64_t digest() const { return Digester.digest(); }

private:
  size_t MaxEvents;
  bool Truncated = false;
  std::vector<TraceEvent> Events;
  TraceDigester Digester;
};

/// Outcome of comparing two event streams position by position.
struct TraceDivergence {
  bool Diverged = false;
  size_t Index = 0;  ///< First differing position (valid when Diverged).
  std::string A, B;  ///< Rendered events at Index; "<end of trace>" when a
                     ///< stream ran out first.
};

/// First position where \p A and \p B disagree on the digested fields
/// (kind, location names, index, barrier id, lanes, released, latency).
TraceDivergence diffTraces(const std::vector<TraceEvent> &A,
                           const std::vector<TraceEvent> &B);

/// Renders warps' event streams as one Chrome trace-event JSON document
/// ({"traceEvents": [...]}): issue groups become duration ("ph":"X")
/// events on pid=warp, tid=0 with the lane mask and location as args;
/// barrier transitions become instant ("ph":"i") events.
std::string renderChromeTrace(
    const std::vector<std::pair<unsigned, const std::vector<TraceEvent> *>>
        &Warps);

} // namespace simtsr::observe

#endif // SIMTSR_OBSERVE_TRACE_H
