//===- Remark.h - Structured pass remarks ----------------------*- C++ -*-===//
///
/// \file
/// LLVM-style optimization remarks for the synchronization pass stack.
/// Every transform pass reports what it did — and what it declined to do —
/// as structured records (pass, kind, function, block, message, key/value
/// args) instead of burying the decision in report counters. Remarks are
/// queryable in-process (the remark-based pass tests assert the paper's
/// figure shapes through them) and serializable to JSONL for tooling; the
/// schema is documented in docs/OBSERVABILITY.md.
///
/// Emission is routed through a thread-local scope so passes need no extra
/// plumbing: a caller that wants remarks installs a RemarkScope around the
/// pipeline invocation, everyone else pays a single thread-local load per
/// (guarded) emission site. The differential oracle runs one pipeline per
/// pool thread, which the thread-local routing isolates for free.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_OBSERVE_REMARK_H
#define SIMTSR_OBSERVE_REMARK_H

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace simtsr::observe {

enum class RemarkKind {
  Applied,   ///< The pass transformed the code as designed.
  Skipped,   ///< A candidate was examined and legitimately left alone.
  Downgrade, ///< Graceful degradation (out of registers, dropped barrier).
  Conflict,  ///< A hazard was detected (deconfliction's Figure 5 pairs).
  Analysis,  ///< Informational: scores, thresholds, candidate rankings.
};

/// \returns a stable lowercase name for \p K ("applied", "skipped", ...).
const char *getRemarkKindName(RemarkKind K);

struct Remark {
  std::string Pass;     ///< "pdom-sync", "sr", "interproc", "deconflict",
                        ///< "realloc", "auto-detect".
  RemarkKind Kind = RemarkKind::Analysis;
  std::string Function; ///< Function name, no '@' sigil; may be empty for
                        ///< module-level remarks.
  std::string Block;    ///< Anchor block name; empty when function-level.
  std::string Message;  ///< Human-readable reason.
  /// Ordered key/value details (barrier ids, thresholds, scores, ...).
  std::vector<std::pair<std::string, std::string>> Args;

  /// One JSON object per remark — the JSONL line format.
  std::string toJson() const;
};

/// Thread-safe collector for one pipeline invocation's remarks.
class RemarkStream {
public:
  void add(Remark R);
  size_t size() const;
  std::vector<Remark> snapshot() const;
  void clear();

  /// Number of remarks from \p Pass with kind \p K.
  unsigned count(const std::string &Pass, RemarkKind K) const;
  /// All remarks from \p Pass whose message contains \p MessageSubstr
  /// (empty substring matches everything).
  std::vector<Remark> matching(const std::string &Pass,
                               const std::string &MessageSubstr) const;
  /// First matching remark, if any; Pass empty matches all passes.
  bool first(const std::string &Pass, const std::string &MessageSubstr,
             Remark &Out) const;

  /// One JSON object per line (JSONL), in emission order.
  std::string toJsonl() const;

private:
  mutable std::mutex Mutex;
  std::vector<Remark> Remarks;
};

/// \returns true when the calling thread has a RemarkScope installed —
/// emission sites use this to skip building messages nobody will read.
bool remarksEnabled();

/// Appends \p R to the calling thread's installed stream; no-op without a
/// scope. Prefer guarding construction with remarksEnabled().
void emitRemark(Remark R);

/// Convenience emitter; arguments are only consumed when a scope is
/// installed on this thread.
void emitRemark(const char *Pass, RemarkKind Kind, const std::string &Function,
                const std::string &Block, std::string Message,
                std::vector<std::pair<std::string, std::string>> Args = {});

/// RAII installation of \p S as the calling thread's remark sink. Nests:
/// the previous sink is restored on destruction. Passing nullptr silences
/// remarks for the scope's extent.
class RemarkScope {
public:
  explicit RemarkScope(RemarkStream *S);
  ~RemarkScope();
  RemarkScope(const RemarkScope &) = delete;
  RemarkScope &operator=(const RemarkScope &) = delete;

private:
  RemarkStream *Prev;
};

} // namespace simtsr::observe

#endif // SIMTSR_OBSERVE_REMARK_H
