//===- Trace.cpp - Simulator event tracing and digests -----------------------===//

#include "observe/Trace.h"

#include "ir/Module.h"
#include "support/Json.h"

#include <cinttypes>
#include <cstdio>

using namespace simtsr;
using namespace simtsr::observe;

const char *simtsr::observe::getTraceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::Issue:
    return "issue";
  case TraceEventKind::BarrierJoin:
    return "barrier_join";
  case TraceEventKind::BarrierRejoin:
    return "barrier_rejoin";
  case TraceEventKind::BarrierCancel:
    return "barrier_cancel";
  case TraceEventKind::BarrierWait:
    return "barrier_wait";
  case TraceEventKind::BarrierSoftWait:
    return "barrier_softwait";
  case TraceEventKind::WarpSyncArrive:
    return "warpsync";
  case TraceEventKind::BarrierYield:
    return "yield";
  case TraceEventKind::LanesExited:
    return "lanes_exited";
  case TraceEventKind::ProgressForced:
    return "progress_forced";
  }
  return "unknown";
}

std::string simtsr::observe::describeTraceEvent(const TraceEvent &E) {
  char Buf[256];
  if (E.Kind == TraceEventKind::Issue) {
    std::snprintf(Buf, sizeof(Buf),
                  "issue @%s/%s[%u] lanes=0x%016" PRIx64 " latency=%u slot=%" PRIu64,
                  E.F ? E.F->name().c_str() : "?",
                  E.BB ? E.BB->name().c_str() : "?", E.Index, E.Lanes,
                  E.Latency, E.Slot);
  } else {
    std::snprintf(Buf, sizeof(Buf),
                  "%s b%u lanes=0x%016" PRIx64 " released=0x%016" PRIx64
                  " slot=%" PRIu64,
                  getTraceEventKindName(E.Kind), E.BarrierId, E.Lanes,
                  E.Released, E.Slot);
  }
  return Buf;
}

uint64_t TraceDigester::locationHash(const Function *F, const BasicBlock *BB) {
  auto It = BlockHashes.find(BB);
  if (It != BlockHashes.end())
    return It->second;
  // "name/" per component, hashed with the shared FNV-1a so the digest
  // definition matches docs/OBSERVABILITY.md and the checked-in goldens.
  uint64_t H = FnvBasis;
  if (F)
    H = fnv1a("/", fnv1a(F->name(), H));
  if (BB)
    H = fnv1a("/", fnv1a(BB->name(), H));
  BlockHashes.emplace(BB, H);
  return H;
}

void TraceDigester::onEvent(const TraceEvent &E) {
  mix(static_cast<uint64_t>(E.Kind));
  if (E.Kind == TraceEventKind::Issue) {
    mix(locationHash(E.F, E.BB));
    mix(E.Index);
    mix(E.Lanes);
    mix(E.Latency);
  } else {
    mix(E.BarrierId);
    mix(E.Lanes);
    mix(E.Released);
  }
}

void TraceDigester::reset() {
  Hash = FnvBasis;
  BlockHashes.clear();
}

uint64_t simtsr::observe::combineTraceDigests(uint64_t Acc,
                                              uint64_t WarpDigest) {
  // Non-commutative mix: warp order matters (the grid reduction folds in
  // warp-index order), unlike the order-independent memory checksum.
  Acc ^= WarpDigest + 0x9e3779b97f4a7c15ull + (Acc << 6) + (Acc >> 2);
  return Acc;
}

TraceRecorder::TraceRecorder(size_t MaxEvents) : MaxEvents(MaxEvents) {}

void TraceRecorder::onEvent(const TraceEvent &E) {
  Digester.onEvent(E);
  if (Events.size() < MaxEvents)
    Events.push_back(E);
  else
    Truncated = true;
}

namespace {

bool sameLocation(const TraceEvent &A, const TraceEvent &B) {
  const bool AF = A.F != nullptr, BF = B.F != nullptr;
  const bool AB = A.BB != nullptr, BB_ = B.BB != nullptr;
  if (AF != BF || AB != BB_)
    return false;
  // Compare by name, not pointer: diffed traces usually come from two
  // separately compiled modules.
  if (AF && A.F->name() != B.F->name())
    return false;
  if (AB && A.BB->name() != B.BB->name())
    return false;
  return true;
}

bool sameEvent(const TraceEvent &A, const TraceEvent &B) {
  if (A.Kind != B.Kind)
    return false;
  if (A.Kind == TraceEventKind::Issue)
    return sameLocation(A, B) && A.Index == B.Index && A.Lanes == B.Lanes &&
           A.Latency == B.Latency;
  return A.BarrierId == B.BarrierId && A.Lanes == B.Lanes &&
         A.Released == B.Released;
}

} // namespace

TraceDivergence simtsr::observe::diffTraces(const std::vector<TraceEvent> &A,
                                            const std::vector<TraceEvent> &B) {
  TraceDivergence D;
  const size_t N = std::min(A.size(), B.size());
  for (size_t I = 0; I < N; ++I) {
    if (!sameEvent(A[I], B[I])) {
      D.Diverged = true;
      D.Index = I;
      D.A = describeTraceEvent(A[I]);
      D.B = describeTraceEvent(B[I]);
      return D;
    }
  }
  if (A.size() != B.size()) {
    D.Diverged = true;
    D.Index = N;
    D.A = N < A.size() ? describeTraceEvent(A[N]) : "<end of trace>";
    D.B = N < B.size() ? describeTraceEvent(B[N]) : "<end of trace>";
  }
  return D;
}

std::string simtsr::observe::renderChromeTrace(
    const std::vector<std::pair<unsigned, const std::vector<TraceEvent> *>>
        &Warps) {
  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  for (const auto &[Pid, Events] : Warps) {
    for (const TraceEvent &E : *Events) {
      W.beginObject();
      W.key("pid");
      W.numberUnsigned(Pid);
      W.key("tid");
      W.numberUnsigned(0);
      W.key("ts");
      W.numberUnsigned(E.Cycle);
      if (E.Kind == TraceEventKind::Issue) {
        std::string Name = (E.F ? E.F->name() : std::string("?")) + "/" +
                           (E.BB ? E.BB->name() : std::string("?"));
        W.key("ph");
        W.string("X");
        W.key("dur");
        W.numberUnsigned(E.Latency ? E.Latency : 1);
        W.key("name");
        W.string(Name);
        W.key("args");
        W.beginObject();
        W.key("inst");
        W.numberUnsigned(E.Index);
        W.key("lanes");
        W.string(jsonHex64(E.Lanes));
        W.key("slot");
        W.numberUnsigned(E.Slot);
        W.endObject();
      } else {
        W.key("ph");
        W.string("i");
        W.key("s");
        W.string("t"); // thread-scoped instant
        W.key("name");
        W.string(getTraceEventKindName(E.Kind));
        W.key("args");
        W.beginObject();
        W.key("barrier");
        W.numberUnsigned(E.BarrierId);
        W.key("lanes");
        W.string(jsonHex64(E.Lanes));
        W.key("released");
        W.string(jsonHex64(E.Released));
        W.key("slot");
        W.numberUnsigned(E.Slot);
        W.endObject();
      }
      W.endObject();
    }
  }
  W.endArray();
  W.key("displayTimeUnit");
  W.string("ns");
  W.endObject();
  return W.take();
}
