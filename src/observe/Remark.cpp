//===- Remark.cpp - Structured pass remarks ----------------------------------===//

#include "observe/Remark.h"

#include "support/Json.h"

using namespace simtsr;
using namespace simtsr::observe;

namespace {
thread_local RemarkStream *CurrentStream = nullptr;
} // namespace

const char *simtsr::observe::getRemarkKindName(RemarkKind K) {
  switch (K) {
  case RemarkKind::Applied:
    return "applied";
  case RemarkKind::Skipped:
    return "skipped";
  case RemarkKind::Downgrade:
    return "downgrade";
  case RemarkKind::Conflict:
    return "conflict";
  case RemarkKind::Analysis:
    return "analysis";
  }
  return "unknown";
}

std::string Remark::toJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("pass");
  W.string(Pass);
  W.key("kind");
  W.string(getRemarkKindName(Kind));
  W.key("function");
  W.string(Function);
  W.key("block");
  W.string(Block);
  W.key("message");
  W.string(Message);
  W.key("args");
  W.beginObject();
  for (const auto &[K, V] : Args) {
    W.key(K);
    W.string(V);
  }
  W.endObject();
  W.endObject();
  return W.take();
}

void RemarkStream::add(Remark R) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Remarks.push_back(std::move(R));
}

size_t RemarkStream::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Remarks.size();
}

std::vector<Remark> RemarkStream::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Remarks;
}

void RemarkStream::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Remarks.clear();
}

unsigned RemarkStream::count(const std::string &Pass, RemarkKind K) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  unsigned N = 0;
  for (const Remark &R : Remarks)
    if (R.Pass == Pass && R.Kind == K)
      ++N;
  return N;
}

std::vector<Remark>
RemarkStream::matching(const std::string &Pass,
                       const std::string &MessageSubstr) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<Remark> Out;
  for (const Remark &R : Remarks)
    if (R.Pass == Pass &&
        (MessageSubstr.empty() ||
         R.Message.find(MessageSubstr) != std::string::npos))
      Out.push_back(R);
  return Out;
}

bool RemarkStream::first(const std::string &Pass,
                         const std::string &MessageSubstr, Remark &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const Remark &R : Remarks)
    if ((Pass.empty() || R.Pass == Pass) &&
        (MessageSubstr.empty() ||
         R.Message.find(MessageSubstr) != std::string::npos)) {
      Out = R;
      return true;
    }
  return false;
}

std::string RemarkStream::toJsonl() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out;
  for (const Remark &R : Remarks) {
    Out += R.toJson();
    Out += '\n';
  }
  return Out;
}

bool simtsr::observe::remarksEnabled() { return CurrentStream != nullptr; }

void simtsr::observe::emitRemark(Remark R) {
  if (CurrentStream)
    CurrentStream->add(std::move(R));
}

void simtsr::observe::emitRemark(
    const char *Pass, RemarkKind Kind, const std::string &Function,
    const std::string &Block, std::string Message,
    std::vector<std::pair<std::string, std::string>> Args) {
  if (!CurrentStream)
    return;
  Remark R;
  R.Pass = Pass;
  R.Kind = Kind;
  R.Function = Function;
  R.Block = Block;
  R.Message = std::move(Message);
  R.Args = std::move(Args);
  CurrentStream->add(std::move(R));
}

RemarkScope::RemarkScope(RemarkStream *S) : Prev(CurrentStream) {
  CurrentStream = S;
}

RemarkScope::~RemarkScope() { CurrentStream = Prev; }
