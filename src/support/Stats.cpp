//===- Stats.cpp - Running statistics helpers -----------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace simtsr;

void RunningStat::add(double X) { addWeighted(X, 1.0); }

void RunningStat::addWeighted(double X, double Weight) {
  assert(Weight >= 0.0 && "negative weight");
  if (Weight == 0.0)
    return;
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  WeightSum += Weight;
  const double Delta = X - Mean;
  Mean += Delta * (Weight / WeightSum);
  M2 += Weight * Delta * (X - Mean);
}

double RunningStat::mean() const { return N == 0 ? 0.0 : Mean; }
double RunningStat::min() const { return N == 0 ? 0.0 : Min; }
double RunningStat::max() const { return N == 0 ? 0.0 : Max; }

double RunningStat::variance() const {
  return WeightSum <= 0.0 ? 0.0 : M2 / WeightSum;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double Lo, double Hi, size_t NumBuckets)
    : Lo(Lo), Hi(Hi), Counts(NumBuckets, 0) {
  assert(Lo < Hi && "empty histogram range");
  assert(NumBuckets > 0 && "histogram needs at least one bucket");
}

void Histogram::add(double X) {
  const double Frac = (X - Lo) / (Hi - Lo);
  auto Index = static_cast<ptrdiff_t>(Frac * static_cast<double>(Counts.size()));
  Index = std::clamp<ptrdiff_t>(Index, 0,
                                static_cast<ptrdiff_t>(Counts.size()) - 1);
  ++Counts[static_cast<size_t>(Index)];
  ++Total;
}

std::string Histogram::render() const {
  static const char *Glyphs[] = {" ", ".", ":", "-", "=", "+", "*", "#", "%"};
  uint64_t Peak = 0;
  for (uint64_t C : Counts)
    Peak = std::max(Peak, C);
  std::string Out;
  for (uint64_t C : Counts) {
    size_t Level = Peak == 0 ? 0 : (C * 8 + Peak - 1) / Peak;
    Out += Glyphs[std::min<size_t>(Level, 8)];
  }
  return Out;
}
