//===- Json.cpp - Minimal JSON writing helpers -------------------------------===//

#include "support/Json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace simtsr;

std::string simtsr::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string simtsr::jsonHex64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016" PRIx64, V);
  return Buf;
}

void JsonWriter::beforeValue() {
  if (PendingKey) {
    PendingKey = false;
    return;
  }
  if (NeedComma.back())
    Out += ',';
  NeedComma.back() = 1;
}

void JsonWriter::beginObject() {
  beforeValue();
  Out += '{';
  NeedComma.push_back('\0');
}

void JsonWriter::endObject() {
  NeedComma.pop_back();
  Out += '}';
}

void JsonWriter::beginArray() {
  beforeValue();
  Out += '[';
  NeedComma.push_back('\0');
}

void JsonWriter::endArray() {
  NeedComma.pop_back();
  Out += ']';
}

void JsonWriter::key(const std::string &K) {
  if (NeedComma.back())
    Out += ',';
  NeedComma.back() = 1;
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
  PendingKey = true;
}

void JsonWriter::string(const std::string &V) {
  beforeValue();
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
}

void JsonWriter::number(int64_t V) {
  beforeValue();
  Out += std::to_string(V);
}

void JsonWriter::numberUnsigned(uint64_t V) {
  beforeValue();
  Out += std::to_string(V);
}

void JsonWriter::number(double V) {
  beforeValue();
  if (!std::isfinite(V)) {
    Out += "null"; // JSON has no Inf/NaN.
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

void JsonWriter::boolean(bool V) {
  beforeValue();
  Out += V ? "true" : "false";
}

void JsonWriter::null() {
  beforeValue();
  Out += "null";
}

void JsonWriter::raw(const std::string &Raw) {
  beforeValue();
  Out += Raw;
}
