//===- Json.cpp - Minimal JSON writing and parsing helpers -------------------===//

#include "support/Json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace simtsr;

std::string simtsr::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string simtsr::jsonHex64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016" PRIx64, V);
  return Buf;
}

void JsonWriter::beforeValue() {
  if (PendingKey) {
    PendingKey = false;
    return;
  }
  if (NeedComma.back())
    Out += ',';
  NeedComma.back() = 1;
}

void JsonWriter::beginObject() {
  beforeValue();
  Out += '{';
  NeedComma.push_back('\0');
}

void JsonWriter::endObject() {
  NeedComma.pop_back();
  Out += '}';
}

void JsonWriter::beginArray() {
  beforeValue();
  Out += '[';
  NeedComma.push_back('\0');
}

void JsonWriter::endArray() {
  NeedComma.pop_back();
  Out += ']';
}

void JsonWriter::key(const std::string &K) {
  if (NeedComma.back())
    Out += ',';
  NeedComma.back() = 1;
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
  PendingKey = true;
}

void JsonWriter::string(const std::string &V) {
  beforeValue();
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
}

void JsonWriter::number(int64_t V) {
  beforeValue();
  Out += std::to_string(V);
}

void JsonWriter::numberUnsigned(uint64_t V) {
  beforeValue();
  Out += std::to_string(V);
}

void JsonWriter::number(double V) {
  beforeValue();
  if (!std::isfinite(V)) {
    Out += "null"; // JSON has no Inf/NaN.
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

void JsonWriter::boolean(bool V) {
  beforeValue();
  Out += V ? "true" : "false";
}

void JsonWriter::null() {
  beforeValue();
  Out += "null";
}

void JsonWriter::raw(const std::string &Raw) {
  beforeValue();
  Out += Raw;
}

//===----------------------------------------------------------------------===//
// JsonValue
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::field(const std::string &Key) const {
  if (!isObject())
    return nullptr;
  // Last occurrence wins for duplicate keys, matching common parsers.
  for (auto It = Fields.rbegin(); It != Fields.rend(); ++It)
    if (It->first == Key)
      return &It->second;
  return nullptr;
}

JsonValue JsonValue::makeBool(bool V) {
  JsonValue J;
  J.K = Kind::Boolean;
  J.Bool = V;
  return J;
}

JsonValue JsonValue::makeNumber(double V) {
  JsonValue J;
  J.K = Kind::Number;
  J.Num = V;
  // Preserve integral identity when the double is exactly an int64.
  if (std::isfinite(V) && V >= -9223372036854775808.0 &&
      V < 9223372036854775808.0 && V == std::floor(V)) {
    J.Int = static_cast<int64_t>(V);
    J.IsIntegral = true;
  }
  return J;
}

JsonValue JsonValue::makeInt(int64_t V) {
  JsonValue J;
  J.K = Kind::Number;
  J.Num = static_cast<double>(V);
  J.Int = V;
  J.IsIntegral = true;
  return J;
}

JsonValue JsonValue::makeString(std::string V) {
  JsonValue J;
  J.K = Kind::String;
  J.Str = std::move(V);
  return J;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> V) {
  JsonValue J;
  J.K = Kind::Array;
  J.Items = std::move(V);
  return J;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> V) {
  JsonValue J;
  J.K = Kind::Object;
  J.Fields = std::move(V);
  return J;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class JsonParser {
public:
  JsonParser(const std::string &Text, unsigned MaxDepth)
      : Text(Text), MaxDepth(MaxDepth) {}

  JsonParseResult run() {
    JsonParseResult R;
    skipWs();
    if (!parseValue(R.Value, 0)) {
      R.Error = Error;
      return R;
    }
    skipWs();
    if (Pos != Text.size())
      R.Error = fail("trailing characters after JSON value");
    return R;
  }

private:
  const std::string &Text;
  const unsigned MaxDepth;
  size_t Pos = 0;
  std::string Error;

  std::string fail(const std::string &Msg) {
    if (Error.empty())
      Error = "offset " + std::to_string(Pos) + ": " + Msg;
    return Error;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    const size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0) {
      fail(std::string("expected '") + Word + "'");
      return false;
    }
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth) {
      fail("nesting too deep");
      return false;
    }
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (Text[Pos]) {
    case 'n':
      return literal("null"); // Out stays Null.
    case 't':
      if (!literal("true"))
        return false;
      Out = JsonValue::makeBool(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = JsonValue::makeBool(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::makeString(std::move(S));
      return true;
    }
    case '[':
      return parseArray(Out, Depth);
    case '{':
      return parseObject(Out, Depth);
    default:
      return parseNumber(Out);
    }
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    ++Pos; // '['
    std::vector<JsonValue> Items;
    skipWs();
    if (consume(']')) {
      Out = JsonValue::makeArray(std::move(Items));
      return true;
    }
    while (true) {
      JsonValue Item;
      skipWs();
      if (!parseValue(Item, Depth + 1))
        return false;
      Items.push_back(std::move(Item));
      skipWs();
      if (consume(']'))
        break;
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return false;
      }
    }
    Out = JsonValue::makeArray(std::move(Items));
    return true;
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    ++Pos; // '{'
    std::vector<std::pair<std::string, JsonValue>> Fields;
    skipWs();
    if (consume('}')) {
      Out = JsonValue::makeObject(std::move(Fields));
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        fail("expected string key in object");
        return false;
      }
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return false;
      }
      skipWs();
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Fields.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (consume('}'))
        break;
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return false;
      }
    }
    Out = JsonValue::makeObject(std::move(Fields));
    return true;
  }

  static void appendUtf8(std::string &S, unsigned Code) {
    if (Code < 0x80) {
      S += static_cast<char>(Code);
    } else if (Code < 0x800) {
      S += static_cast<char>(0xc0 | (Code >> 6));
      S += static_cast<char>(0x80 | (Code & 0x3f));
    } else {
      S += static_cast<char>(0xe0 | (Code >> 12));
      S += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      S += static_cast<char>(0x80 | (Code & 0x3f));
    }
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size()) {
      fail("truncated \\u escape");
      return false;
    }
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      const char C = Text[Pos + I];
      unsigned D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = 10 + C - 'a';
      else if (C >= 'A' && C <= 'F')
        D = 10 + C - 'A';
      else {
        fail("invalid \\u escape digit");
        return false;
      }
      Out = Out * 16 + D;
    }
    Pos += 4;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    while (true) {
      if (Pos >= Text.size()) {
        fail("unterminated string");
        return false;
      }
      const unsigned char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos; // backslash
      if (Pos >= Text.size()) {
        fail("unterminated escape");
        return false;
      }
      const char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code;
        if (!parseHex4(Code))
          return false;
        // Surrogate pairs are accepted but mapped to U+FFFD — the serve
        // protocol only exchanges ASCII field values.
        if (Code >= 0xd800 && Code <= 0xdfff) {
          if (Code < 0xdc00 && Pos + 1 < Text.size() && Text[Pos] == '\\' &&
              Text[Pos + 1] == 'u') {
            Pos += 2;
            unsigned Low;
            if (!parseHex4(Low))
              return false;
          }
          Code = 0xfffd;
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        fail("invalid escape character");
        return false;
      }
    }
  }

  bool parseNumber(JsonValue &Out) {
    const size_t Start = Pos;
    if (consume('-')) {
      // fall through to digits
    }
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      Pos = Start;
      fail("invalid value");
      return false;
    }
    bool Integral = true;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
        fail("digit expected after decimal point");
        return false;
      }
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
        fail("digit expected in exponent");
        return false;
      }
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    const std::string Lexeme = Text.substr(Start, Pos - Start);
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      const long long V = std::strtoll(Lexeme.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out = JsonValue::makeInt(V);
        return true;
      }
      // Out-of-range integer literal: keep it as a double.
    }
    Out = JsonValue::makeNumber(std::strtod(Lexeme.c_str(), nullptr));
    return true;
  }
};

} // namespace

JsonParseResult simtsr::parseJson(const std::string &Text,
                                  unsigned MaxDepth) {
  return JsonParser(Text, MaxDepth).run();
}
