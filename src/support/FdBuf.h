//===- FdBuf.h - Line-framed buffered fd I/O -------------------*- C++ -*-===//
///
/// \file
/// The byte layer under every serve connection: a per-fd pair of buffers
/// with newline framing on the read side and a flushable queue on the
/// write side. Works on blocking and nonblocking descriptors alike — the
/// poll-based serve loop runs it nonblocking, the tests run it over
/// socketpairs and pipes.
///
/// The loops are written against the full POSIX contract, which the old
/// streambuf adapter got wrong: reads and writes retry on EINTR, short
/// writes resume at the right offset, EAGAIN is surfaced as WouldBlock
/// instead of being conflated with errors, and socket writes use
/// MSG_NOSIGNAL so a peer that disappeared mid-response produces a clean
/// Closed result instead of a SIGPIPE. Every syscall consults the
/// fault-injection harness (support/FaultInject.h) first, so the same
/// loops can be tortured with synthetic EINTR, one-byte reads/writes and
/// mid-request connection drops under test.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SUPPORT_FDBUF_H
#define SIMTSR_SUPPORT_FDBUF_H

#include <cstddef>
#include <string>

namespace simtsr {

enum class IoResult {
  Ok,         ///< Progress was made.
  WouldBlock, ///< Nonblocking fd has nothing to read / no room to write.
  Eof,        ///< Peer closed its write side; buffered lines stay valid.
  Closed,     ///< Hard error or injected drop; abandon the descriptor.
};

class FdBuf {
public:
  /// Lines longer than this are treated as a protocol violation and close
  /// the connection instead of buffering without bound.
  static constexpr size_t MaxLineBytes = 64u << 20;

  explicit FdBuf(int FD) : FD(FD) {}

  int fd() const { return FD; }

  /// Switches \p FD to nonblocking (or back); returns false on fcntl
  /// failure.
  static bool setNonBlocking(int FD, bool NonBlocking = true);

  /// Reads once from the fd (retrying EINTR) and appends to the input
  /// buffer. Ok means bytes arrived — call nextLine() until it is dry.
  IoResult fill();

  /// Extracts the next complete input line (without its newline; a
  /// trailing '\r' is stripped) into \p Line. Returns false when no full
  /// line is buffered yet.
  bool nextLine(std::string &Line);

  /// Queues \p Line plus a newline for writing. Call flushSome() to move
  /// bytes to the fd.
  void queueLine(const std::string &Line);

  /// Writes queued bytes until drained (Ok), the fd stops accepting
  /// (WouldBlock), or the connection dies (Closed). Handles EINTR and
  /// short writes; never raises SIGPIPE on sockets.
  IoResult flushSome();

  bool hasPendingOut() const { return OutPos < Out.size(); }
  size_t bufferedInBytes() const { return In.size(); }

private:
  int FD;
  std::string In;
  std::string Out;
  size_t OutPos = 0;
};

} // namespace simtsr

#endif // SIMTSR_SUPPORT_FDBUF_H
