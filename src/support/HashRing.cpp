//===- HashRing.cpp - Consistent-hash ring over content keys ------------------===//

#include "support/HashRing.h"

#include "support/Hash.h"

#include <algorithm>
#include <cassert>

using namespace simtsr;

uint64_t HashRing::vnodePoint(const std::string &Name, unsigned Index) {
  // "name#i" with the decimal index, finalized with mix64: trivially
  // reproducible from any language (serve_client.py computes identical
  // points). The finalizer is load-bearing — see mix64 in support/Hash.h.
  return mix64(fnv1a(Name + "#" + std::to_string(Index)));
}

bool HashRing::addNode(const std::string &Name) {
  if (std::find(Nodes.begin(), Nodes.end(), Name) != Nodes.end())
    return false;
  Nodes.push_back(Name);
  rebuild();
  return true;
}

bool HashRing::removeNode(const std::string &Name) {
  auto It = std::find(Nodes.begin(), Nodes.end(), Name);
  if (It == Nodes.end())
    return false;
  Nodes.erase(It);
  rebuild();
  return true;
}

void HashRing::rebuild() {
  // Full rebuild on membership change: membership changes are rare (a
  // shard joining or dying), lookups are hot — keep the lookup structure
  // a flat sorted vector.
  Ring.clear();
  Ring.reserve(Nodes.size() * Vnodes);
  for (uint32_t N = 0; N < Nodes.size(); ++N)
    for (uint32_t V = 0; V < Vnodes; ++V)
      Ring.push_back({vnodePoint(Nodes[N], V), N, V});
  std::sort(Ring.begin(), Ring.end(), [this](const Point &A, const Point &B) {
    if (A.Hash != B.Hash)
      return A.Hash < B.Hash;
    // Hash ties (vanishingly rare, but membership must stay a pure
    // function of the node set): order by name, then replica index.
    if (Nodes[A.Node] != Nodes[B.Node])
      return Nodes[A.Node] < Nodes[B.Node];
    return A.Vnode < B.Vnode;
  });
}

const HashRing::Point &HashRing::firstAt(uint64_t Key) const {
  assert(!Ring.empty() && "lookup on an empty ring");
  auto It = std::lower_bound(
      Ring.begin(), Ring.end(), Key,
      [](const Point &P, uint64_t K) { return P.Hash < K; });
  if (It == Ring.end())
    It = Ring.begin(); // Wrap past the highest point.
  return *It;
}

const std::string &HashRing::lookup(uint64_t Key) const {
  // Keys get the same finalizer as the vnode points: both sides of the
  // ordering comparison must be uniformly spread over the ring.
  return Nodes[firstAt(mix64(Key)).Node];
}

const std::string &HashRing::lookupSuccessor(uint64_t Key,
                                             const std::string &Skip) const {
  assert(!Ring.empty() && "lookup on an empty ring");
  const uint64_t Mixed = mix64(Key);
  auto It = std::lower_bound(
      Ring.begin(), Ring.end(), Mixed,
      [](const Point &P, uint64_t K) { return P.Hash < K; });
  if (It == Ring.end())
    It = Ring.begin();
  // Walk clockwise to the first vnode of a different node. Bounded by the
  // ring size: with a single member every point belongs to Skip.
  for (size_t Step = 0; Step < Ring.size(); ++Step) {
    const std::string &Owner = Nodes[It->Node];
    if (Owner != Skip)
      return Owner;
    ++It;
    if (It == Ring.end())
      It = Ring.begin();
  }
  return Nodes[firstAt(Mixed).Node];
}
