//===- Json.h - Minimal JSON writing and parsing helpers -------*- C++ -*-===//
///
/// \file
/// A tiny append-only JSON writer shared by the observability exports
/// (remark JSONL, Chrome trace-event files) and the bench/tool emitters,
/// plus a small recursive-descent parser for the serve daemon's JSON-lines
/// request protocol (docs/SERVE.md). The parser accepts strict RFC 8259
/// input, reports errors with byte offsets instead of throwing, and caps
/// nesting depth so hostile requests cannot blow the stack.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SUPPORT_JSON_H
#define SIMTSR_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace simtsr {

/// Escapes \p S for embedding inside a JSON string literal (quotes not
/// included): ", \, control characters.
std::string jsonEscape(const std::string &S);

/// Formats \p V as a JSON string of the form "0x%016x" — 64-bit digests
/// and checksums are exchanged as hex strings because JSON numbers lose
/// precision past 2^53.
std::string jsonHex64(uint64_t V);

/// Streaming writer for one JSON value tree. Usage:
/// \code
///   JsonWriter W;
///   W.beginObject();
///   W.key("name"); W.string("x");
///   W.key("items"); W.beginArray(); W.number(1); W.number(2); W.endArray();
///   W.endObject();
///   std::string Out = W.take();
/// \endcode
/// The writer inserts commas automatically; nesting correctness is the
/// caller's responsibility (it is an emitter, not a validator).
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  void key(const std::string &K);
  void string(const std::string &V);
  void number(int64_t V);
  void numberUnsigned(uint64_t V);
  void number(double V);
  void boolean(bool V);
  void null();
  /// Emits \p Raw verbatim as the next value (pre-rendered JSON).
  void raw(const std::string &Raw);

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void beforeValue();
  std::string Out;
  /// Whether the current aggregate already holds a value (comma needed).
  /// One bit per nesting level; level 0 is the root.
  std::string NeedComma = std::string(1, '\0');
  bool PendingKey = false;
};

/// One parsed JSON value. Objects keep their fields in source order;
/// duplicate keys keep the last occurrence (field() returns it).
class JsonValue {
public:
  enum class Kind { Null, Boolean, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Boolean; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Typed accessors return \p Default on kind mismatch — the protocol
  /// layer validates kinds explicitly where it matters.
  bool asBool(bool Default = false) const {
    return isBool() ? Bool : Default;
  }
  double asDouble(double Default = 0.0) const {
    return isNumber() ? Num : Default;
  }
  /// \returns the number as an integer when it was written as one (no
  /// fraction/exponent, in int64 range); \p Default otherwise.
  int64_t asInt(int64_t Default = 0) const {
    return isNumber() && IsIntegral ? Int : Default;
  }
  bool isIntegral() const { return isNumber() && IsIntegral; }
  const std::string &asString() const { return Str; }

  const std::vector<JsonValue> &items() const { return Items; }
  const std::vector<std::pair<std::string, JsonValue>> &fields() const {
    return Fields;
  }
  /// \returns the value of object field \p Key, or nullptr when this is
  /// not an object or has no such field.
  const JsonValue *field(const std::string &Key) const;

  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool V);
  static JsonValue makeNumber(double V);
  static JsonValue makeInt(int64_t V);
  static JsonValue makeString(std::string V);
  static JsonValue makeArray(std::vector<JsonValue> V);
  static JsonValue
  makeObject(std::vector<std::pair<std::string, JsonValue>> V);

private:
  Kind K = Kind::Null;
  bool Bool = false;
  double Num = 0.0;
  int64_t Int = 0;
  bool IsIntegral = false;
  std::string Str;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Fields;
};

struct JsonParseResult {
  JsonValue Value;
  /// Empty on success; else "offset N: message".
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Parses exactly one JSON value from \p Text (leading/trailing whitespace
/// allowed, trailing garbage is an error). Nesting beyond \p MaxDepth
/// levels is rejected.
JsonParseResult parseJson(const std::string &Text, unsigned MaxDepth = 64);

} // namespace simtsr

#endif // SIMTSR_SUPPORT_JSON_H
