//===- Json.h - Minimal JSON writing helpers -------------------*- C++ -*-===//
///
/// \file
/// A tiny append-only JSON writer shared by the observability exports
/// (remark JSONL, Chrome trace-event files) and the bench/tool emitters.
/// It produces RFC 8259 output but does not parse; the repo never consumes
/// JSON, only hands it to external tooling (chrome://tracing, CI checks).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SUPPORT_JSON_H
#define SIMTSR_SUPPORT_JSON_H

#include <cstdint>
#include <string>

namespace simtsr {

/// Escapes \p S for embedding inside a JSON string literal (quotes not
/// included): ", \, control characters.
std::string jsonEscape(const std::string &S);

/// Formats \p V as a JSON string of the form "0x%016x" — 64-bit digests
/// and checksums are exchanged as hex strings because JSON numbers lose
/// precision past 2^53.
std::string jsonHex64(uint64_t V);

/// Streaming writer for one JSON value tree. Usage:
/// \code
///   JsonWriter W;
///   W.beginObject();
///   W.key("name"); W.string("x");
///   W.key("items"); W.beginArray(); W.number(1); W.number(2); W.endArray();
///   W.endObject();
///   std::string Out = W.take();
/// \endcode
/// The writer inserts commas automatically; nesting correctness is the
/// caller's responsibility (it is an emitter, not a validator).
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  void key(const std::string &K);
  void string(const std::string &V);
  void number(int64_t V);
  void numberUnsigned(uint64_t V);
  void number(double V);
  void boolean(bool V);
  void null();
  /// Emits \p Raw verbatim as the next value (pre-rendered JSON).
  void raw(const std::string &Raw);

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void beforeValue();
  std::string Out;
  /// Whether the current aggregate already holds a value (comma needed).
  /// One bit per nesting level; level 0 is the root.
  std::string NeedComma = std::string(1, '\0');
  bool PendingKey = false;
};

} // namespace simtsr

#endif // SIMTSR_SUPPORT_JSON_H
