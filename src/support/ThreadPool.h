//===- ThreadPool.h - Simple deterministic-friendly thread pool -*- C++ -*-===//
///
/// \file
/// A fixed-size pool of persistent worker threads plus a blocking
/// parallelFor. No work stealing: a parallelFor publishes one job (an
/// atomic index counter over [0, N)); workers and the calling thread pull
/// indices until the range is exhausted. Results must be written to
/// disjoint, pre-sized slots by the body; any order-sensitive reduction is
/// the caller's responsibility (see runGrid for the canonical pattern:
/// compute in parallel, reduce in index order, stay bit-identical to the
/// sequential loop).
///
/// Nested parallelFor calls from inside a worker run inline on that worker,
/// so parallel sections may freely call into other parallel sections
/// without deadlock. With one hardware thread (or SIMTSR_THREADS=1) every
/// parallelFor degrades to the plain sequential loop.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SUPPORT_THREADPOOL_H
#define SIMTSR_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace simtsr {

class ThreadPool {
public:
  /// Creates a pool whose parallelFor runs on \p Concurrency threads in
  /// total: the caller plus Concurrency - 1 persistent workers.
  /// Concurrency <= 1 creates no workers (parallelFor runs inline).
  explicit ThreadPool(unsigned Concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total threads a parallelFor may use, including the calling thread.
  unsigned concurrency() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  /// Runs Body(I) for every I in [0, N) and blocks until all calls
  /// returned. The calling thread participates. Bodies run concurrently
  /// and must not touch shared mutable state without synchronization.
  /// The first exception thrown by a body is rethrown to the caller after
  /// the whole range completed.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// Schedules \p Fn to run once on a pool worker and returns immediately;
  /// nobody waits for it, so completion signalling (and keeping any
  /// referenced state alive) is the caller's responsibility. With no
  /// workers the call degrades to running \p Fn inline before returning.
  /// \p Fn must not throw — there is no caller to rethrow to, so escaping
  /// exceptions are dropped. Jobs still queued when the pool is destroyed
  /// are discarded without running.
  void async(std::function<void()> Fn);

  /// The process-wide pool. Sized from the SIMTSR_THREADS environment
  /// variable when set (total concurrency; 1 disables parallelism), else
  /// from std::thread::hardware_concurrency().
  static ThreadPool &global();

  /// Concurrency global() is (or would be) created with.
  static unsigned defaultConcurrency();

private:
  struct Job;

  void workerLoop();
  static void runIndex(Job &J, size_t I);

  std::vector<std::thread> Workers;
  std::mutex QueueMutex;
  std::condition_variable QueueCV;
  std::deque<std::shared_ptr<Job>> Queue;
  bool Stopping = false;
};

/// Convenience wrapper over ThreadPool::global().parallelFor.
void parallelFor(size_t N, const std::function<void(size_t)> &Body);

} // namespace simtsr

#endif // SIMTSR_SUPPORT_THREADPOOL_H
