//===- ThreadPool.cpp - Simple deterministic-friendly thread pool ---------===//

#include "support/ThreadPool.h"

#include <cstdlib>
#include <exception>

using namespace simtsr;

namespace {
/// True on pool worker threads; nested parallelFor calls run inline there
/// so a parallel body can call another parallel section without deadlock.
thread_local bool InPoolWorker = false;
} // namespace

struct ThreadPool::Job {
  const std::function<void(size_t)> *Body = nullptr;
  /// async() jobs own their body (the caller does not block, so nothing
  /// else keeps it alive); Body then points here.
  std::function<void(size_t)> OwnedBody;
  std::atomic<size_t> Next{0}; ///< Next index to claim.
  size_t End = 0;              ///< One past the last index.
  std::atomic<size_t> Remaining{0}; ///< Indices not yet completed.
  std::mutex DoneMutex;
  std::condition_variable Done;
  std::exception_ptr Error; ///< First body exception; guarded by DoneMutex.
};

ThreadPool::ThreadPool(unsigned Concurrency) {
  const unsigned NumWorkers = Concurrency > 1 ? Concurrency - 1 : 0;
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runIndex(Job &J, size_t I) {
  try {
    (*J.Body)(I);
  } catch (...) {
    std::lock_guard<std::mutex> Lock(J.DoneMutex);
    if (!J.Error)
      J.Error = std::current_exception();
  }
  if (J.Remaining.fetch_sub(1) == 1) {
    // Completed the last index: wake the owner. Taking the mutex orders
    // the notification after the owner entered its wait.
    std::lock_guard<std::mutex> Lock(J.DoneMutex);
    J.Done.notify_all();
  }
}

void ThreadPool::workerLoop() {
  InPoolWorker = true;
  while (true) {
    std::shared_ptr<Job> J;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCV.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Stopping)
        return;
      J = Queue.front();
      if (J->Next.load() >= J->End) {
        // Exhausted job still queued: retire it and look again.
        Queue.pop_front();
        continue;
      }
    }
    while (true) {
      size_t I = J->Next.fetch_add(1);
      if (I >= J->End)
        break;
      runIndex(*J, I);
    }
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (N == 1 || Workers.empty() || InPoolWorker) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }

  auto J = std::make_shared<Job>();
  J->Body = &Body;
  J->End = N;
  J->Remaining.store(N);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Queue.push_back(J);
  }
  QueueCV.notify_all();

  // The caller pulls indices alongside the workers.
  while (true) {
    size_t I = J->Next.fetch_add(1);
    if (I >= N)
      break;
    runIndex(*J, I);
  }
  {
    std::unique_lock<std::mutex> Lock(J->DoneMutex);
    J->Done.wait(Lock, [&] { return J->Remaining.load() == 0; });
  }
  {
    // Retire the job eagerly so the queue never holds a stale entry.
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (auto It = Queue.begin(); It != Queue.end(); ++It) {
      if (*It == J) {
        Queue.erase(It);
        break;
      }
    }
  }
  if (J->Error)
    std::rethrow_exception(J->Error);
}

void ThreadPool::async(std::function<void()> Fn) {
  if (Workers.empty()) {
    Fn(); // No workers: degrade to synchronous execution.
    return;
  }
  auto J = std::make_shared<Job>();
  J->OwnedBody = [F = std::move(Fn)](size_t) { F(); };
  J->Body = &J->OwnedBody;
  J->End = 1;
  J->Remaining.store(1);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Queue.push_back(std::move(J));
  }
  QueueCV.notify_one();
}

unsigned ThreadPool::defaultConcurrency() {
  if (const char *Env = std::getenv("SIMTSR_THREADS")) {
    char *EndPtr = nullptr;
    unsigned long V = std::strtoul(Env, &EndPtr, 10);
    if (EndPtr != Env && *EndPtr == '\0' && V >= 1 && V <= 1024)
      return static_cast<unsigned>(V);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool(defaultConcurrency());
  return Pool;
}

void simtsr::parallelFor(size_t N, const std::function<void(size_t)> &Body) {
  ThreadPool::global().parallelFor(N, Body);
}
