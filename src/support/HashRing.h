//===- HashRing.h - Consistent-hash ring over content keys -----*- C++ -*-===//
///
/// \file
/// The key→shard mapping behind sharded serving (serve/Router.h): a
/// consistent-hash ring with virtual nodes, keyed on the same FNV-1a
/// content digests the serve caches use (support/Hash.h). Two properties
/// make it the right router for a fleet of cache shards:
///
///  - **Determinism.** Node positions are FNV-1a of "name#vnode" and
///    lookups walk a sorted ring, so every router instance — the C++
///    Router, scripts/serve_client.py, a test on another platform — maps
///    any key to the same shard given the same membership. No process
///    state, clocks or pointers participate.
///
///  - **Minimal remap.** Adding or removing one node moves only the keys
///    that land on (or leave) that node's arcs — about 1/N of the space —
///    and never moves a key between two surviving nodes. For a cache
///    fleet that is the difference between warming one shard and
///    stampeding all of them.
///
/// Virtual nodes (default 64 per node) bound the arc-length variance so
/// the shards load-balance within a small factor of uniform; the
/// distribution bound is asserted in tests/support/HashRingTest.cpp.
///
/// Ties (two vnodes hashing to the same point) are broken by node name,
/// then vnode index, keeping the ring a deterministic function of its
/// membership on every platform.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SUPPORT_HASHRING_H
#define SIMTSR_SUPPORT_HASHRING_H

#include <cstdint>
#include <string>
#include <vector>

namespace simtsr {

class HashRing {
public:
  /// Default virtual nodes per node. scripts/serve_client.py mirrors this
  /// value; change both together or routing diverges between clients.
  static constexpr unsigned DefaultVnodes = 64;

  explicit HashRing(unsigned VnodesPerNode = DefaultVnodes)
      : Vnodes(VnodesPerNode ? VnodesPerNode : 1) {}

  /// Adds \p Name to the ring (no-op when already present). Returns true
  /// when the membership changed.
  bool addNode(const std::string &Name);

  /// Removes \p Name from the ring. Returns true when it was a member.
  bool removeNode(const std::string &Name);

  bool empty() const { return Nodes.empty(); }
  size_t size() const { return Nodes.size(); }
  unsigned vnodesPerNode() const { return Vnodes; }

  /// Member names in insertion order (the router reports per-shard stats
  /// in this order).
  const std::vector<std::string> &nodes() const { return Nodes; }

  /// The node owning \p Key: the first vnode at or clockwise of the key's
  /// point on the ring. Must not be called on an empty ring.
  const std::string &lookup(uint64_t Key) const;

  /// The next distinct node clockwise of \p Key after \p Skip failed —
  /// the deterministic failover target. Returns \p Skip itself only when
  /// it is the sole member.
  const std::string &lookupSuccessor(uint64_t Key,
                                     const std::string &Skip) const;

  /// The ring position of one virtual node: fnv1a("name#i"). Exposed so
  /// tests and other-language clients can pin the exact placement.
  static uint64_t vnodePoint(const std::string &Name, unsigned Index);

private:
  struct Point {
    uint64_t Hash;
    uint32_t Node;   ///< Index into Nodes.
    uint32_t Vnode;  ///< Which virtual replica, for deterministic ties.
  };

  /// First ring point at or after \p Key (wrapping).
  const Point &firstAt(uint64_t Key) const;
  void rebuild();

  unsigned Vnodes;
  std::vector<std::string> Nodes;
  std::vector<Point> Ring; ///< Sorted by (Hash, node name, Vnode).
};

} // namespace simtsr

#endif // SIMTSR_SUPPORT_HASHRING_H
