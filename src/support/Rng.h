//===- Rng.h - Deterministic pseudo-random number generation ---*- C++ -*-===//
///
/// \file
/// Deterministic, seedable PRNGs used by the simulator (per-thread random
/// streams for the `rand` opcode) and by the test suite (random CFG and
/// workload generation). SplitMix64 seeds a xoshiro256** state so that two
/// streams with nearby seeds are statistically independent.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SUPPORT_RNG_H
#define SIMTSR_SUPPORT_RNG_H

#include <cstdint>

namespace simtsr {

/// Stateless 64-bit mix function; good avalanche behaviour. Used to derive
/// independent seeds from (seed, threadId) pairs.
uint64_t splitMix64(uint64_t &State);

/// xoshiro256** generator. Small, fast, deterministic across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL);

  /// Reseeds the generator; equivalent to constructing a fresh Rng.
  void seed(uint64_t Seed);

  /// \returns the next raw 64-bit value.
  uint64_t next();

  /// \returns a uniformly distributed value in [0, Bound). Bound 0 yields 0.
  uint64_t nextBelow(uint64_t Bound);

  /// \returns a uniformly distributed value in [Lo, Hi). Requires Lo < Hi.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// \returns a double uniformly distributed in [0, 1).
  double nextDouble();

  /// \returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P);

private:
  uint64_t State[4];
};

} // namespace simtsr

#endif // SIMTSR_SUPPORT_RNG_H
