//===- FdBuf.cpp - Line-framed buffered fd I/O --------------------------------===//

#include "support/FdBuf.h"

#include "support/FaultInject.h"

#include <cerrno>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace simtsr;

bool FdBuf::setNonBlocking(int FD, bool NonBlocking) {
  const int Flags = ::fcntl(FD, F_GETFL, 0);
  if (Flags < 0)
    return false;
  const int Want = NonBlocking ? (Flags | O_NONBLOCK) : (Flags & ~O_NONBLOCK);
  return ::fcntl(FD, F_SETFL, Want) == 0;
}

IoResult FdBuf::fill() {
  FaultInjector &FI = FaultInjector::active();
  if (FI.fire(FaultInjector::Fault::Drop))
    return IoResult::Closed;
  if (In.size() > MaxLineBytes)
    return IoResult::Closed;

  char Buf[4096];
  size_t Max = sizeof(Buf);
  if (FI.fire(FaultInjector::Fault::ShortRead))
    Max = 1;
  // At most one synthetic EINTR per fill: the point is to exercise the
  // retry, not to starve the loop at rate 1.
  bool InjectEintr = FI.fire(FaultInjector::Fault::Eintr);
  for (;;) {
    if (InjectEintr) {
      InjectEintr = false;
      continue;
    }
    const ssize_t N = ::read(FD, Buf, Max);
    if (N > 0) {
      In.append(Buf, static_cast<size_t>(N));
      return IoResult::Ok;
    }
    if (N == 0)
      return IoResult::Eof;
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return IoResult::WouldBlock;
    return IoResult::Closed;
  }
}

bool FdBuf::nextLine(std::string &Line) {
  const size_t NL = In.find('\n');
  if (NL == std::string::npos)
    return false;
  Line.assign(In, 0, NL);
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  In.erase(0, NL + 1);
  return true;
}

void FdBuf::queueLine(const std::string &Line) {
  Out += Line;
  Out += '\n';
}

IoResult FdBuf::flushSome() {
  FaultInjector &FI = FaultInjector::active();
  if (OutPos >= Out.size()) {
    Out.clear();
    OutPos = 0;
    return IoResult::Ok;
  }
  if (FI.fire(FaultInjector::Fault::Drop))
    return IoResult::Closed;

  bool InjectEintr = FI.fire(FaultInjector::Fault::Eintr);
  while (OutPos < Out.size()) {
    if (InjectEintr) {
      InjectEintr = false;
      continue; // Synthetic EINTR: the loop must simply retry.
    }
    size_t Len = Out.size() - OutPos;
    if (Len > 1 && FI.fire(FaultInjector::Fault::ShortWrite))
      Len = 1; // Force the resume-at-offset path.
    // MSG_NOSIGNAL keeps a vanished peer from raising SIGPIPE; pipes and
    // regular fds in tests fall back to plain write.
    ssize_t W = ::send(FD, Out.data() + OutPos, Len, MSG_NOSIGNAL);
    if (W < 0 && errno == ENOTSOCK)
      W = ::write(FD, Out.data() + OutPos, Len);
    if (W > 0) {
      OutPos += static_cast<size_t>(W);
      continue;
    }
    if (W < 0 && errno == EINTR)
      continue;
    if (W < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return IoResult::WouldBlock;
    return IoResult::Closed;
  }
  Out.clear();
  OutPos = 0;
  return IoResult::Ok;
}
