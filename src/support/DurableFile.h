//===- DurableFile.h - Crash-safe atomic file writes -----------*- C++ -*-===//
///
/// \file
/// One primitive, used everywhere bytes must survive a crash: write to a
/// private temp file in the destination directory, fsync it, and rename
/// it over the target. A reader therefore sees either the old complete
/// file or the new complete file — never a torn one — and a crash at any
/// point leaves at worst an orphaned temp file.
///
/// The write path is EINTR-safe, handles short writes, and consults the
/// fault-injection harness (support/FaultInject.h) so tests can force
/// ENOSPC and fsync failures deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SUPPORT_DURABLEFILE_H
#define SIMTSR_SUPPORT_DURABLEFILE_H

#include <string>

namespace simtsr {

/// Atomically replaces \p Path with \p Bytes (temp file + fsync +
/// rename). On failure returns false with \p Error set and no temp file
/// left behind; \p Path is untouched.
bool durableWriteFile(const std::string &Path, const std::string &Bytes,
                      std::string &Error);

/// Creates \p Dir and any missing parents (mkdir -p). Returns false with
/// \p Error set when a component cannot be created.
bool createDirectories(const std::string &Dir, std::string &Error);

} // namespace simtsr

#endif // SIMTSR_SUPPORT_DURABLEFILE_H
