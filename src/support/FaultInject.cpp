//===- FaultInject.cpp - Deterministic seeded fault injection -----------------===//

#include "support/FaultInject.h"

#include <cstdio>
#include <cstdlib>

using namespace simtsr;

namespace {

std::atomic<FaultInjector *> Override{nullptr};

bool classByName(const std::string &Name, FaultInjector::Fault &Out) {
  for (unsigned I = 0; I < FaultInjector::NumFaults; ++I) {
    const auto F = static_cast<FaultInjector::Fault>(I);
    if (Name == FaultInjector::name(F)) {
      Out = F;
      return true;
    }
  }
  return false;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(S.c_str(), &End, 10);
  return End && *End == '\0';
}

bool parseRate(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  Out = std::strtod(S.c_str(), &End);
  return End && *End == '\0' && Out >= 0.0 && Out <= 1.0;
}

} // namespace

const char *FaultInjector::name(Fault F) {
  switch (F) {
  case Fault::ShortRead:
    return "short_read";
  case Fault::ShortWrite:
    return "short_write";
  case Fault::Eintr:
    return "eintr";
  case Fault::Enospc:
    return "enospc";
  case Fault::FsyncFail:
    return "fsync_fail";
  case Fault::Corrupt:
    return "corrupt";
  case Fault::Drop:
    return "drop";
  case Fault::Stall:
    return "stall";
  }
  return "unknown";
}

bool FaultInjector::parse(const std::string &Spec, FaultInjector &Out,
                          std::string &Error) {
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    const size_t Comma = Spec.find(',', Pos);
    std::string Clause = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() + 1 : Comma + 1;
    // Trim surrounding whitespace.
    const size_t B = Clause.find_first_not_of(" \t");
    const size_t E = Clause.find_last_not_of(" \t");
    Clause = B == std::string::npos ? "" : Clause.substr(B, E - B + 1);
    if (Clause.empty())
      continue;

    if (Clause.rfind("seed=", 0) == 0) {
      if (!parseU64(Clause.substr(5), Out.Seed)) {
        Error = "bad seed in clause '" + Clause + "'";
        return false;
      }
      continue;
    }

    const size_t Colon = Clause.find(':');
    const std::string Name =
        Colon == std::string::npos ? Clause : Clause.substr(0, Colon);
    Fault F;
    if (!classByName(Name, F)) {
      Error = "unknown fault class '" + Name + "'";
      return false;
    }
    Class &C = Out.Classes[index(F)];
    C.Armed = true;
    C.Rate = 1.0;
    C.Param = F == Fault::Stall ? 100 : 0;
    if (Colon != std::string::npos) {
      const std::string Param = Clause.substr(Colon + 1);
      if (F == Fault::Stall) {
        if (!parseU64(Param, C.Param) || C.Param > 60000) {
          Error = "stall wants milliseconds in [0, 60000], got '" + Param +
                  "'";
          return false;
        }
      } else if (!parseRate(Param, C.Rate)) {
        Error = "fault rate must be in [0, 1], got '" + Param + "'";
        return false;
      }
    }
    Out.Armed.store(true, std::memory_order_relaxed);
  }
  Out.R.seed(Out.Seed);
  return true;
}

FaultInjector &FaultInjector::active() {
  static FaultInjector *EnvInjector = [] {
    static FaultInjector I;
    if (const char *Spec = std::getenv("SIMTSR_FAULTS")) {
      std::string Error;
      FaultInjector Parsed;
      if (FaultInjector::parse(Spec, Parsed, Error)) {
        // Copy field by field; the atomics forbid a default copy.
        for (unsigned K = 0; K < NumFaults; ++K) {
          I.Classes[K].Armed = Parsed.Classes[K].Armed;
          I.Classes[K].Rate = Parsed.Classes[K].Rate;
          I.Classes[K].Param = Parsed.Classes[K].Param;
        }
        I.Seed = Parsed.Seed;
        I.R.seed(Parsed.Seed);
        I.Armed.store(Parsed.any(), std::memory_order_relaxed);
      } else {
        std::fprintf(stderr, "SIMTSR_FAULTS: %s (injection disabled)\n",
                     Error.c_str());
      }
    }
    return &I;
  }();
  if (FaultInjector *Over = Override.load(std::memory_order_acquire))
    return *Over;
  return *EnvInjector;
}

FaultInjector *FaultInjector::install(FaultInjector *I) {
  return Override.exchange(I, std::memory_order_acq_rel);
}

bool FaultInjector::fire(Fault F) {
  if (!any())
    return false;
  Class &C = Classes[index(F)];
  if (!C.Armed)
    return false;
  bool Hit;
  {
    std::lock_guard<std::mutex> Lock(RngMutex);
    Hit = C.Rate >= 1.0 || R.nextBool(C.Rate);
  }
  if (Hit)
    C.Fired.fetch_add(1, std::memory_order_relaxed);
  return Hit;
}

bool FaultInjector::corruptBytes(std::string &Bytes) {
  if (Bytes.empty() || !fire(Fault::Corrupt))
    return false;
  size_t Pos;
  {
    std::lock_guard<std::mutex> Lock(RngMutex);
    Pos = static_cast<size_t>(R.nextBelow(Bytes.size()));
  }
  Bytes[Pos] = static_cast<char>(Bytes[Pos] ^ 0x5a);
  return true;
}
