//===- FaultInject.h - Deterministic seeded fault injection ----*- C++ -*-===//
///
/// \file
/// The fault-injection harness behind the serve robustness tests: a
/// deterministic, seeded source of synthetic I/O failures that the
/// low-level plumbing (FdBuf, durableWriteFile, the serve disk tier)
/// consults before touching the real syscall. Production builds pay one
/// relaxed atomic load per I/O call when no spec is armed.
///
/// Configuration comes from the `SIMTSR_FAULTS` environment variable (or a
/// test-installed override), a comma-separated clause list:
///
///   SIMTSR_FAULTS="seed=42,eintr:0.25,short_read:0.5,enospc:1"
///
///   clause  := "seed=" N | class [":" param]
///   class   := short_read | short_write | eintr | enospc | fsync_fail
///            | corrupt | drop | stall
///   param   := firing probability in [0, 1] (default 1); for `stall` the
///              param is a sleep in milliseconds instead (default 100).
///
/// Classes and where they bite:
///
///   short_read   FdBuf::fill reads at most one byte per syscall
///   short_write  FdBuf::flushSome writes at most one byte per syscall
///   eintr        one synthetic EINTR before each read/write loop
///   enospc       durableWriteFile fails as if the disk were full
///   fsync_fail   durableWriteFile's fsync fails after a clean write
///   corrupt      serve disk-tier entries are corrupted before writing
///   drop         FdBuf reports the connection reset mid-request
///   stall        data-plane request processing sleeps `param` ms
///
/// Firing decisions consume one seeded xoshiro draw each, in call order,
/// so a failing run replays exactly under the same spec and workload.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SUPPORT_FAULTINJECT_H
#define SIMTSR_SUPPORT_FAULTINJECT_H

#include "support/Rng.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace simtsr {

class FaultInjector {
public:
  enum class Fault {
    ShortRead,
    ShortWrite,
    Eintr,
    Enospc,
    FsyncFail,
    Corrupt,
    Drop,
    Stall,
  };
  static constexpr unsigned NumFaults = 8;

  /// A fully-disarmed injector: every fire() is false, for free.
  FaultInjector() = default;

  /// Parses \p Spec (the SIMTSR_FAULTS grammar above) into \p Out. On a
  /// malformed spec returns false with \p Error set; \p Out is left
  /// disarmed.
  static bool parse(const std::string &Spec, FaultInjector &Out,
                    std::string &Error);

  /// The process-wide injector: configured from SIMTSR_FAULTS on first
  /// use (a malformed spec warns on stderr and disarms), unless a test
  /// installed an override.
  static FaultInjector &active();

  /// Installs \p I as the active injector (nullptr restores the
  /// environment-configured one). \returns the previous override so tests
  /// can nest. Not for production use.
  static FaultInjector *install(FaultInjector *I);

  /// Whether \p F appears in the spec at all (rate may still be < 1).
  bool armed(Fault F) const { return Classes[index(F)].Armed; }

  /// True when any class is armed — the fast path for callers that want
  /// to skip injection bookkeeping entirely.
  bool any() const { return Armed.load(std::memory_order_relaxed); }

  /// Rolls the seeded RNG against class \p F's rate; counts and returns
  /// true when the fault should fire now.
  bool fire(Fault F);

  /// Sleep parameter of the `stall` class, in milliseconds.
  uint64_t stallMillis() const {
    return Classes[index(Fault::Stall)].Param;
  }

  /// When `corrupt` fires, XORs one deterministically-chosen byte of
  /// \p Bytes and returns true; otherwise leaves it untouched.
  bool corruptBytes(std::string &Bytes);

  /// How many times \p F has fired (for stats and test assertions).
  uint64_t firedCount(Fault F) const {
    return Classes[index(F)].Fired.load(std::memory_order_relaxed);
  }

  /// Stable lowercase spec name of \p F ("short_read", ...).
  static const char *name(Fault F);

private:
  struct Class {
    bool Armed = false;
    double Rate = 1.0;
    uint64_t Param = 0;
    std::atomic<uint64_t> Fired{0};
  };

  static constexpr unsigned index(Fault F) {
    return static_cast<unsigned>(F);
  }

  Class Classes[NumFaults];
  std::atomic<bool> Armed{false};
  uint64_t Seed = 0x5eedfa17u;
  std::mutex RngMutex;
  Rng R{0x5eedfa17u};
};

} // namespace simtsr

#endif // SIMTSR_SUPPORT_FAULTINJECT_H
