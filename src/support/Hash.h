//===- Hash.h - Shared FNV-1a content hashing ------------------*- C++ -*-===//
///
/// \file
/// The one FNV-1a-64 implementation every content digest in the tree is
/// built on: serve cache keys (serve/Cache.h), the disk-tier payload
/// checksums (serve/DiskTier.h), the observe-layer trace digests
/// (observe/Trace.h), the simulator memory checksum (sim/Warp.cpp), and
/// the consistent-hash ring that shards those keys across daemon
/// instances (support/HashRing.h).
///
/// Everything here is deterministic across platforms, compilers and
/// processes — these hashes are exchanged between daemon instances and
/// checked into golden files, so they are part of the public contract.
/// Three mixing granularities exist because each has existing golden
/// digests behind it; do not "simplify" one into another:
///
///  - fnv1a:        byte-wise over a string (cache keys, checksums);
///  - fnv1aMix:     byte-wise over one 64-bit value (trace digests);
///  - fnv1aMixWord: word-wise over one 64-bit value (memory checksum —
///                  one XOR/multiply per word, not per byte).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SUPPORT_HASH_H
#define SIMTSR_SUPPORT_HASH_H

#include <cstdint>
#include <string>

namespace simtsr {

inline constexpr uint64_t FnvBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t FnvPrime = 0x100000001b3ull;

/// FNV-1a-64 over \p Bytes starting from \p Seed (chainable).
inline uint64_t fnv1a(const std::string &Bytes, uint64_t Seed = FnvBasis) {
  uint64_t Hash = Seed;
  for (const char C : Bytes) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= FnvPrime;
  }
  return Hash;
}

/// Folds one 64-bit value into an FNV-1a accumulator byte by byte
/// (little-endian byte order, independent of the host's).
inline uint64_t fnv1aMix(uint64_t Acc, uint64_t V) {
  for (int I = 0; I < 8; ++I) {
    Acc ^= (V >> (I * 8)) & 0xff;
    Acc *= FnvPrime;
  }
  return Acc;
}

/// Folds one 64-bit value in a single XOR/multiply step — the coarse
/// variant behind the simulator's order-independent memory checksum.
inline uint64_t fnv1aMixWord(uint64_t Acc, uint64_t V) {
  Acc ^= V;
  Acc *= FnvPrime;
  return Acc;
}

/// SplitMix64 finalizer: spreads entropy into all 64 bits. FNV-1a of a
/// short string leaves the high bits nearly constant (each multiply only
/// pushes the input bytes upward a few bits), which is fine for equality
/// keys but fatal for ordering-based structures like the consistent-hash
/// ring — un-mixed vnode points cluster on one arc and a single shard
/// inherits most of the keyspace. Every value compared by position on the
/// ring goes through this first (support/HashRing.cpp and the Python
/// mirror in scripts/serve_client.py).
inline constexpr uint64_t mix64(uint64_t Z) {
  Z ^= Z >> 30;
  Z *= 0xbf58476d1ce4e5b9ull;
  Z ^= Z >> 27;
  Z *= 0x94d049bb133111ebull;
  Z ^= Z >> 31;
  return Z;
}

} // namespace simtsr

#endif // SIMTSR_SUPPORT_HASH_H
