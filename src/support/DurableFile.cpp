//===- DurableFile.cpp - Crash-safe atomic file writes ------------------------===//

#include "support/DurableFile.h"

#include "support/FaultInject.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace simtsr;

namespace {

std::string errnoString() { return std::strerror(errno); }

/// EINTR-safe close; EBADF after a retried close would double-close, so
/// POSIX says call once and ignore EINTR.
void closeFd(int FD) { ::close(FD); }

bool writeAll(int FD, const std::string &Bytes, std::string &Error) {
  size_t Done = 0;
  while (Done < Bytes.size()) {
    const ssize_t W = ::write(FD, Bytes.data() + Done, Bytes.size() - Done);
    if (W > 0) {
      Done += static_cast<size_t>(W);
      continue;
    }
    if (W < 0 && errno == EINTR)
      continue;
    Error = errnoString();
    return false;
  }
  return true;
}

/// fsync the directory holding \p Path so the rename itself is durable.
/// Best effort: some filesystems reject directory fsync; that does not
/// undo the atomicity of the rename.
void syncParentDir(const std::string &Path) {
  const size_t Slash = Path.find_last_of('/');
  const std::string Dir = Slash == std::string::npos
                              ? std::string(".")
                              : Path.substr(0, Slash == 0 ? 1 : Slash);
  const int FD = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (FD < 0)
    return;
  ::fsync(FD);
  closeFd(FD);
}

} // namespace

bool simtsr::durableWriteFile(const std::string &Path,
                              const std::string &Bytes, std::string &Error) {
  static std::atomic<uint64_t> Seq{0};
  const std::string Tmp = Path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(Seq.fetch_add(1));

  FaultInjector &FI = FaultInjector::active();

  const int FD =
      ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (FD < 0) {
    Error = "open '" + Tmp + "': " + errnoString();
    return false;
  }

  if (FI.fire(FaultInjector::Fault::Enospc)) {
    closeFd(FD);
    ::unlink(Tmp.c_str());
    Error = "write '" + Tmp + "': " + std::strerror(ENOSPC) +
            " (injected)";
    return false;
  }
  std::string WriteError;
  if (!writeAll(FD, Bytes, WriteError)) {
    closeFd(FD);
    ::unlink(Tmp.c_str());
    Error = "write '" + Tmp + "': " + WriteError;
    return false;
  }

  const bool FsyncFailed = FI.fire(FaultInjector::Fault::FsyncFail)
                               ? (errno = EIO, true)
                               : ::fsync(FD) != 0;
  if (FsyncFailed) {
    closeFd(FD);
    ::unlink(Tmp.c_str());
    Error = "fsync '" + Tmp + "': " + errnoString() +
            (FI.armed(FaultInjector::Fault::FsyncFail) ? " (injected)" : "");
    return false;
  }
  closeFd(FD);

  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = "rename '" + Tmp + "' -> '" + Path + "': " + errnoString();
    ::unlink(Tmp.c_str());
    return false;
  }
  syncParentDir(Path);
  return true;
}

bool simtsr::createDirectories(const std::string &Dir, std::string &Error) {
  if (Dir.empty())
    return true;
  std::string Partial;
  size_t Pos = 0;
  while (Pos <= Dir.size()) {
    const size_t Slash = Dir.find('/', Pos);
    const size_t End = Slash == std::string::npos ? Dir.size() : Slash;
    Partial = Dir.substr(0, End);
    Pos = End + 1;
    if (Partial.empty() || Partial == ".")
      continue;
    if (::mkdir(Partial.c_str(), 0755) != 0 && errno != EEXIST) {
      Error = "mkdir '" + Partial + "': " + errnoString();
      return false;
    }
  }
  return true;
}
