//===- Stats.h - Running statistics helpers --------------------*- C++ -*-===//
///
/// \file
/// Accumulators for experiment reporting: running mean/min/max/stddev and a
/// simple fixed-bucket histogram. Used by the simulator's SIMT-efficiency
/// accounting and by the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SUPPORT_STATS_H
#define SIMTSR_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace simtsr {

/// Welford-style running statistics over a stream of doubles.
class RunningStat {
public:
  void add(double X);
  void addWeighted(double X, double Weight);

  size_t count() const { return N; }
  double totalWeight() const { return WeightSum; }
  double mean() const;
  double min() const;
  double max() const;
  double variance() const;
  double stddev() const;

private:
  size_t N = 0;
  double WeightSum = 0.0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Histogram with uniformly sized buckets over [Lo, Hi); out-of-range
/// samples are clamped into the first/last bucket.
class Histogram {
public:
  Histogram(double Lo, double Hi, size_t NumBuckets);

  void add(double X);
  size_t bucketCount() const { return Counts.size(); }
  uint64_t bucket(size_t I) const { return Counts[I]; }
  uint64_t total() const { return Total; }

  /// Renders a one-line ASCII sparkline, useful in bench output.
  std::string render() const;

private:
  double Lo;
  double Hi;
  std::vector<uint64_t> Counts;
  uint64_t Total = 0;
};

} // namespace simtsr

#endif // SIMTSR_SUPPORT_STATS_H
