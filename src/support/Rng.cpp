//===- Rng.cpp - Deterministic pseudo-random number generation -----------===//

#include "support/Rng.h"

#include <cassert>

using namespace simtsr;

uint64_t simtsr::splitMix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(uint64_t Seed) { seed(Seed); }

void Rng::seed(uint64_t Seed) {
  uint64_t S = Seed;
  for (auto &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  if (Bound == 0)
    return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t V = next();
    if (V >= Threshold)
      return V % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo < Hi && "empty range");
  return Lo + static_cast<int64_t>(nextBelow(static_cast<uint64_t>(Hi - Lo)));
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}
