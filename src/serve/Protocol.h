//===- Protocol.h - serve request/response protocol ------------*- C++ -*-===//
///
/// \file
/// The JSON-lines protocol the serve daemon speaks (docs/SERVE.md): one
/// request object per input line, one response object per output line,
/// correlated by the client-chosen "id" — responses may arrive out of
/// order, because requests are dispatched asynchronously.
///
/// Requests: {"id": N, "op": "compile" | "simulate" | "lint" | "stats" |
/// "cluster" | "shutdown", ...op-specific fields}. Unknown fields and
/// malformed values are errors, not warnings — a typo'd field name
/// silently changing the launch would poison cached results.
///
/// Responses always carry "id" (when one could be parsed), "ok" and "op";
/// failures add "error" (a stable machine-readable code) and "detail".
/// Rendering is deterministic — fixed field order, fixed number formats —
/// so the protocol can be golden-tested byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SERVE_PROTOCOL_H
#define SIMTSR_SERVE_PROTOCOL_H

#include "serve/Cache.h"
#include "serve/DiskTier.h"
#include "sim/Warp.h"

#include <cstdint>
#include <string>
#include <vector>

namespace simtsr::serve {

/// Schema tag reported by stats responses and BENCH_serve.json.
const char *protocolVersion(); // "simtsr-serve-v2"

enum class RequestOp { Compile, Simulate, Lint, Stats, Cluster, Shutdown };

const char *getRequestOpName(RequestOp Op);

struct Request {
  bool HasId = false;
  int64_t Id = 0;
  RequestOp Op = RequestOp::Stats;

  /// Inline `.sir` source (compile/lint, and simulate without "module").
  std::string Source;
  bool HasSource = false;
  /// Compile-key reference "0x..." of a previously compiled module
  /// (simulate only; mutually exclusive with "source").
  uint64_t ModuleKey = 0;
  bool HasModuleKey = false;

  std::string Pipeline; ///< Defaults to "pdom" (lint: "none").
  int SoftThreshold = 8;
  SchedulerPolicy Policy = SchedulerPolicy::MaxConvergence;
  /// "progress" field (simulate): forward-progress model. Fair requests
  /// key and render exactly as before the field existed.
  ProgressSpec Progress;
  uint64_t Warps = 1;
  unsigned WarpSize = 32;
  uint64_t Seed = 1;
  std::vector<int64_t> Args;
  std::string Kernel; ///< Launch target; empty = the module's first function.

  bool WantModule = false;  ///< compile: include post-pipeline source.
  bool WantRemarks = false; ///< compile: include pass remarks.
  bool Notes = false;       ///< lint: include informational notes.
  bool Fix = false;         ///< lint: run the repair synthesizer too.
};

struct RequestParse {
  Request R;
  /// Empty when the line parsed; else a stable error code.
  std::string Error;
  std::string Detail;

  bool ok() const { return Error.empty(); }
};

/// Parses one request line. On failure, Error holds one of the codes
/// "parse_error", "bad_request" and Detail explains; R.HasId/R.Id are
/// still populated when an id could be extracted so the error response
/// can be correlated.
RequestParse parseRequest(const std::string &Line);

/// Point-in-time server counters rendered by stats responses.
struct StatsSnapshot {
  CacheStats Compile;
  CacheStats Sim;
  DiskTierStats Disk;      ///< Disk tier counters + degraded flag.
  uint64_t Requests = 0;   ///< Requests accepted (including failures).
  uint64_t Rejected = 0;   ///< Requests shed by backpressure.
  uint64_t Timeouts = 0;   ///< Requests answered with "timeout".
  uint64_t QueueDepth = 0; ///< In-flight async requests right now.
  uint64_t QueueLimit = 0;
  /// Per-request latency percentiles over the recent window, in
  /// microseconds; zero when no requests completed yet.
  uint64_t P50Micros = 0;
  uint64_t P90Micros = 0;
  uint64_t P99Micros = 0;
};

/// Response renderers. All return a single line without the trailing
/// newline, with deterministic field order.
std::string renderErrorResponse(const Request &R, const std::string &Code,
                                const std::string &Detail);
/// The "queue_full" shed response: like an error response, but carries a
/// "retry_after_ms" hint so clients can back off instead of hammering.
std::string renderShedResponse(const Request &R, uint64_t QueueLimit,
                               uint64_t RetryAfterMs);
std::string renderCompileResponse(const Request &R, const CompileEntry &E,
                                  bool Cached);
std::string renderSimulateResponse(const Request &R, const CompileEntry &CE,
                                   const SimEntry &E, bool CompileCached,
                                   bool SimCached);
struct LintSummary {
  unsigned Errors = 0;
  unsigned Warnings = 0;
  unsigned Notes = 0;
  std::vector<std::string> Findings; ///< Formatted diagnostic lines.
  /// "fix": true results. The daemon runs the static lint->edit->re-lint
  /// fixpoint only — dynamic oracle certification is a batch-tool concern
  /// (simtsr-lint --fix); responses say so via fix_certified: "static".
  bool FixRequested = false;
  std::string FixStatus;             ///< "clean" / "repaired" / "unrepairable".
  std::vector<std::string> FixEdits; ///< Serialized RepairEdit lines.
  std::string RepairedSource;        ///< Printed repaired module.
  std::string BlockingWitness;       ///< Unrepairable only.
};
std::string renderLintResponse(const Request &R, const CompileEntry &CE,
                               bool CompileCached, const LintSummary &L);
std::string renderStatsResponse(const Request &R, const StatsSnapshot &S);

/// One shard's view as probed by the router for a "cluster" response.
/// Router-side counters are always present; the shard-side counters are
/// valid only when Reachable (a live stats round trip succeeded).
struct ShardClusterStat {
  std::string Address;
  bool Reachable = false;
  // Router-side counters for this shard.
  uint64_t Forwarded = 0;      ///< Requests answered remotely.
  uint64_t Errors = 0;         ///< Transport failures (connect/io/timeout).
  uint64_t Shed = 0;           ///< Remote queue_full / shutting_down.
  uint64_t ForwardP50Micros = 0; ///< Round-trip latency over recent window.
  // Shard-side counters, parsed from the shard's own stats response.
  uint64_t Requests = 0;
  uint64_t CompileHits = 0;
  uint64_t CompileMisses = 0;
  uint64_t SimHits = 0;
  uint64_t SimMisses = 0;
  uint64_t P50Micros = 0;
};

/// Fleet-wide view rendered by the "cluster" verb: the local server's own
/// stats plus one row per configured shard. Shards is empty when the
/// server runs unrouted (single-instance mode).
struct ClusterSnapshot {
  StatsSnapshot Local;
  bool Routing = false;
  unsigned Vnodes = 0;
  uint64_t LocalFallbacks = 0;  ///< Forwards that fell back to local exec.
  uint64_t VerifyFailures = 0;  ///< Remote/local digest mismatches seen.
  std::vector<ShardClusterStat> Shards;
};

std::string renderClusterResponse(const Request &R, const ClusterSnapshot &C);
std::string renderShutdownResponse(const Request &R, uint64_t Served);

} // namespace simtsr::serve

#endif // SIMTSR_SERVE_PROTOCOL_H
