//===- Server.cpp - Batched compile-and-simulate daemon -----------------------===//

#include "serve/Server.h"

#include "serve/Router.h"

#include "driver/Driver.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "lint/ConvergenceLint.h"
#include "lint/Repair.h"
#include "observe/Remark.h"
#include "sim/Grid.h"
#include "support/FaultInject.h"
#include "support/FdBuf.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <istream>
#include <memory>
#include <ostream>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace simtsr;
using namespace simtsr::serve;

Server::Server(ServerOptions Opts)
    : Opts(Opts), Compiles(Opts.CompileCacheCapacity),
      Sims(Opts.SimCacheCapacity), Disk(Opts.DiskCacheDir) {
  // 256-sample window: big enough for stable p99 under the bench load,
  // small enough that the percentiles track the recent regime.
  LatencyWindow.assign(256, 0);
  if (!this->Opts.RouteShards.empty()) {
    RouterOptions RO;
    RO.Shards = this->Opts.RouteShards;
    RO.Vnodes = this->Opts.RouteVnodes;
    RO.ForwardTimeoutMillis = this->Opts.RouteTimeoutMillis;
    Route = std::make_unique<Router>(RO);
  }
}

Server::~Server() = default;

//===----------------------------------------------------------------------===//
// Compile
//===----------------------------------------------------------------------===//

std::shared_ptr<const CompileEntry>
Server::rehydrateCompile(uint64_t Key, const std::string &Payload) {
  auto E = std::make_shared<CompileEntry>();
  if (!decodeCompileEntry(Payload, *E) || E->Key != Key)
    return nullptr;
  if (!E->Ok)
    return E; // A cached failure carries no module; the diagnostics stand.

  // Re-parse the stored post-pipeline text instead of serializing the
  // Module. The stored PostText/PostDigest are kept verbatim — simulate
  // keys derive from those bytes, so entries written by any daemon
  // instance stay interchangeable.
  ParseResult P = parseModule(E->PostText);
  if (!P.ok())
    return nullptr;
  E->Launch = verifyLaunchModule(*P.M);
  if (!E->Launch.Errors.empty())
    return nullptr;
  E->M = std::shared_ptr<const Module>(std::move(P.M));
  E->Launch.M = E->M.get();
  return E;
}

std::shared_ptr<const CompileEntry>
Server::compileCached(const std::string &Source,
                      const std::string &PipelineName, int SoftThreshold,
                      bool &Cached) {
  const uint64_t Key = compileKeyNamed(Source, PipelineName, SoftThreshold);
  if (std::shared_ptr<const CompileEntry> Hit = Compiles.lookup(Key)) {
    Cached = true;
    return Hit;
  }

  // Disk-tier read-through: an entry persisted by this or any previous
  // daemon instance warms the memory cache. A payload that decodes but no
  // longer rehydrates (stored text fails to parse or verify) is treated
  // exactly like corruption: quarantined and recomputed.
  if (std::optional<std::string> Payload = Disk.load('c', Key)) {
    if (std::shared_ptr<const CompileEntry> E =
            rehydrateCompile(Key, *Payload)) {
      Compiles.insert(E);
      Cached = true;
      return E;
    }
    Disk.quarantineEntry('c', Key);
  }
  Cached = false;

  auto E = std::make_shared<CompileEntry>();
  E->Key = Key;
  E->PipelineName = PipelineName;
  // Failures are persisted too — same source, same diagnostics, even
  // across a restart.
  const auto Persist = [this, &E] {
    Disk.store('c', E->Key, encodeCompileEntry(*E));
  };

  ParseResult P = parseModule(Source);
  if (!P.ok()) {
    E->Errors = std::move(P.Errors);
    Compiles.insert(E);
    Persist();
    return E;
  }

  observe::RemarkStream Remarks;
  const std::optional<PipelineReport> Report = driver::runConfiguredPipeline(
      *P.M, PipelineName, SoftThreshold, &Remarks);
  if (!Report) {
    E->Errors.push_back("unknown pipeline config '" + PipelineName + "'");
    Compiles.insert(E);
    Persist();
    return E;
  }

  E->Launch = verifyLaunchModule(*P.M);
  if (!E->Launch.Errors.empty()) {
    E->Errors = E->Launch.Errors;
    E->Launch = LaunchVerification{};
    Compiles.insert(E);
    Persist();
    return E;
  }

  E->Ok = true;
  E->M = std::shared_ptr<const Module>(std::move(P.M));
  E->Launch.M = E->M.get();
  E->PostText = printModule(*E->M);
  E->PostDigest = fnv1a(E->PostText);
  if (E->M->size() > 0)
    E->KernelName = E->M->function(0)->name();
  E->RemarksJsonl = Remarks.toJsonl();
  E->RemarkCount = static_cast<unsigned>(Remarks.size());
  E->Downgrades = Report->barrierDowngrades();
  E->VerifierDiagnostics = Report->VerifierDiagnostics;

  // First-insert-wins on a concurrent duplicate; both entries are
  // bit-identical by construction, so serving ours is still correct.
  Compiles.insert(E);
  Persist();
  return E;
}

std::string Server::processCompile(const Request &R) {
  bool Cached = false;
  const std::shared_ptr<const CompileEntry> E =
      compileCached(R.Source, R.Pipeline, R.SoftThreshold, Cached);
  return renderCompileResponse(R, *E, Cached);
}

//===----------------------------------------------------------------------===//
// Simulate
//===----------------------------------------------------------------------===//

namespace {

/// Every launch axis that can change the schedule, folded onto the
/// post-pipeline content digest.
uint64_t simulateKey(const CompileEntry &CE, const std::string &Kernel,
                     const Request &R) {
  uint64_t Key = fnv1aMix(0xcbf29ce484222325ull, CE.PostDigest);
  Key = fnv1a(Kernel, Key);
  Key = fnv1aMix(Key, R.Warps);
  Key = fnv1aMix(Key, R.WarpSize);
  Key = fnv1aMix(Key, R.Seed);
  Key = fnv1aMix(Key, static_cast<uint64_t>(R.Policy));
  // Mixed only when non-fair, so every pre-progress cache entry (memory
  // and disk tier) keeps its key.
  if (R.Progress.Model != ProgressModel::Fair) {
    Key = fnv1a(formatProgressSpec(R.Progress), Key);
  }
  Key = fnv1aMix(Key, R.Args.size());
  for (const int64_t A : R.Args)
    Key = fnv1aMix(Key, static_cast<uint64_t>(A));
  return Key;
}

} // namespace

std::string Server::processSimulate(const Request &R) {
  bool CompileCached = false;
  std::shared_ptr<const CompileEntry> CE;
  if (R.HasModuleKey) {
    CE = Compiles.lookup(R.ModuleKey);
    if (!CE)
      return renderErrorResponse(
          R, "unknown_module",
          "no cached module under key " + jsonHex64(R.ModuleKey) +
              " (compile first, or resend \"source\")");
    CompileCached = true;
  } else {
    CE = compileCached(R.Source, R.Pipeline, R.SoftThreshold, CompileCached);
  }
  if (!CE->Ok) {
    std::string Joined;
    for (const std::string &Err : CE->Errors) {
      if (!Joined.empty())
        Joined += "; ";
      Joined += Err;
    }
    return renderErrorResponse(R, "compile_error", Joined);
  }

  const std::string Kernel = R.Kernel.empty() ? CE->KernelName : R.Kernel;
  const Function *F = CE->M->functionByName(Kernel);
  if (!F)
    return renderErrorResponse(R, "unknown_kernel",
                               "no function '@" + Kernel +
                                   "' in the compiled module");

  const uint64_t Key = simulateKey(*CE, Kernel, R);
  if (std::shared_ptr<const SimEntry> Hit = Sims.lookup(Key))
    return renderSimulateResponse(R, *CE, *Hit, CompileCached, true);

  // Disk-tier read-through: every SimEntry field round-trips exactly
  // (the efficiency double is stored as its bit pattern), so a disk hit
  // is bit-identical to the run that produced it.
  if (std::optional<std::string> Payload = Disk.load('s', Key)) {
    auto E = std::make_shared<SimEntry>();
    if (decodeSimEntry(*Payload, *E) && E->Key == Key) {
      Sims.insert(E);
      return renderSimulateResponse(R, *CE, *E, CompileCached, true);
    }
    Disk.quarantineEntry('s', Key);
  }

  LaunchConfig Config;
  Config.WarpSize = R.WarpSize;
  Config.Seed = R.Seed;
  Config.Policy = R.Policy;
  Config.Progress = R.Progress;
  Config.KernelArgs = R.Args;
  Config.CollectTraceDigest = true;
  Config.Verified = &CE->Launch;
  if (Opts.MaxIssueSlots)
    Config.MaxIssueSlots = Opts.MaxIssueSlots;
  if (Opts.MaxWallMillis)
    Config.MaxWallMillis = Opts.MaxWallMillis;

  const GridResult G = runGrid(*CE->M, F, Config,
                               static_cast<unsigned>(R.Warps));

  auto E = std::make_shared<SimEntry>();
  E->Key = Key;
  E->Ok = G.Ok;
  E->Status = G.Ok ? "finished" : getRunStatusName(G.FailStatus);
  E->FailMessage = G.FailMessage;
  E->WarpsRun = G.WarpsRun;
  E->Cycles = G.TotalCycles;
  E->IssueSlots = G.TotalIssueSlots;
  E->SimtEfficiency = G.SimtEfficiency;
  E->Checksum = G.CombinedChecksum;
  E->TraceDigest = G.TraceDigest;
  Sims.insert(E);
  Disk.store('s', Key, encodeSimEntry(*E));
  return renderSimulateResponse(R, *CE, *E, CompileCached, false);
}

//===----------------------------------------------------------------------===//
// Lint
//===----------------------------------------------------------------------===//

std::string Server::processLint(const Request &R) {
  bool CompileCached = false;
  const std::shared_ptr<const CompileEntry> CE =
      compileCached(R.Source, R.Pipeline, R.SoftThreshold, CompileCached);
  if (!CE->Ok) {
    std::string Joined;
    for (const std::string &Err : CE->Errors) {
      if (!Joined.empty())
        Joined += "; ";
      Joined += Err;
    }
    return renderErrorResponse(R, "compile_error", Joined);
  }

  // The analyzer wants a mutable module (it recomputes predecessors), and
  // the cached one is shared and immutable — lint a private clone. The
  // daemon's lint is origin-blind, like linting the printed module text.
  const std::unique_ptr<Module> M = CE->M->clone();
  lint::LintOptions LO;
  LO.WarpSize = R.WarpSize;
  LO.Remarks = false;
  const lint::LintResult LR = runConvergenceLint(*M, LO);

  LintSummary S;
  S.Errors = LR.count(lint::LintSeverity::Error);
  S.Warnings = LR.count(lint::LintSeverity::Warning);
  S.Notes = LR.count(lint::LintSeverity::Note);
  for (const lint::LintDiagnostic &D : LR.Diagnostics) {
    if (D.Severity == lint::LintSeverity::Note && !R.Notes)
      continue;
    S.Findings.push_back(D.format());
  }
  if (R.Fix) {
    // Static repair only: the daemon never simulates on the lint path, so
    // the oracle-certification half of --fix stays in the batch tool.
    lint::RepairOptions RO;
    RO.Lint = LO;
    const lint::RepairOutcome FO = lint::synthesizeRepair(*M, RO);
    S.FixRequested = true;
    S.FixStatus = lint::getRepairStatusName(FO.Status);
    for (const lint::RepairEdit &E : FO.Edits)
      S.FixEdits.push_back(E.format());
    S.RepairedSource = FO.RepairedText;
    S.BlockingWitness = FO.BlockingWitness;
  }
  return renderLintResponse(R, *CE, CompileCached, S);
}

//===----------------------------------------------------------------------===//
// Dispatch, stats, serve loop
//===----------------------------------------------------------------------===//

std::string Server::process(const Request &R) {
  const auto Start = std::chrono::steady_clock::now();
  std::string Response;
  switch (R.Op) {
  case RequestOp::Compile:
  case RequestOp::Simulate:
  case RequestOp::Lint: {
    // The `stall` fault class slows the data plane down deterministically;
    // the deadline, shedding and shutdown-drain tests lean on it.
    FaultInjector &FI = FaultInjector::active();
    if (FI.any() && FI.fire(FaultInjector::Fault::Stall))
      std::this_thread::sleep_for(
          std::chrono::milliseconds(FI.stallMillis()));
    if (R.Op == RequestOp::Compile)
      Response = processCompile(R);
    else if (R.Op == RequestOp::Simulate)
      Response = processSimulate(R);
    else
      Response = processLint(R);
    break;
  }
  case RequestOp::Stats:
    return renderStatsResponse(R, statsSnapshot());
  case RequestOp::Cluster:
    return renderClusterResponse(R, clusterSnapshot());
  case RequestOp::Shutdown:
    return renderShutdownResponse(R, Requests.load());
  }
  const auto End = std::chrono::steady_clock::now();
  recordLatency(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count()));
  return Response;
}

std::string Server::handle(const std::string &Line) {
  ++Requests;
  const RequestParse P = parseRequest(Line);
  if (!P.ok())
    return renderErrorResponse(P.R, P.Error, P.Detail);
  return processLine(Line, P.R);
}

std::string Server::processLine(const std::string &Line, const Request &R) {
  const bool DataPlane = R.Op == RequestOp::Compile ||
                         R.Op == RequestOp::Simulate ||
                         R.Op == RequestOp::Lint;
  if (Route && DataPlane) {
    const ForwardResult FR = Route->forward(Line, R);
    if (FR.Answered)
      return Opts.RouteVerify ? verifyForwarded(R, FR.Response)
                              : FR.Response;
    // Shard down or shedding: absorb the work locally. Correctness is
    // unaffected — every tier computes the same bits — only the cache
    // locality of this one request is lost.
    LocalFallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  return process(R);
}

std::string Server::verifyForwarded(const Request &R,
                                    const std::string &Remote) {
  const std::string Local = process(R);
  const JsonParseResult RJ = parseJson(Remote);
  const JsonParseResult LJ = parseJson(Local);
  bool Mismatch = !RJ.ok() || !LJ.ok();
  if (!Mismatch) {
    // The deterministic content fields must agree bit for bit; cache
    // provenance fields ("cached") legitimately differ between tiers.
    for (const char *Name :
         {"ok", "module", "post_digest", "checksum", "trace_digest",
          "status", "cycles", "issue_slots"}) {
      const JsonValue *RF = RJ.Value.field(Name);
      const JsonValue *LF = LJ.Value.field(Name);
      if (!RF || !LF)
        continue; // Field not part of this op's response.
      std::string RS, LS;
      if (RF->isString() && LF->isString()) {
        RS = RF->asString();
        LS = LF->asString();
      } else if (RF->isBool() && LF->isBool()) {
        RS = RF->asBool() ? "t" : "f";
        LS = LF->asBool() ? "t" : "f";
      } else if (RF->isIntegral() && LF->isIntegral()) {
        RS = std::to_string(RF->asInt());
        LS = std::to_string(LF->asInt());
      } else {
        Mismatch = true;
        break;
      }
      if (RS != LS) {
        Mismatch = true;
        break;
      }
    }
  }
  if (!Mismatch)
    return Remote;
  VerifyFailures.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr,
               "simtsr-serve: route verify mismatch on id %lld; serving "
               "local result\n",
               static_cast<long long>(R.Id));
  return Local; // The locally computed answer is the ground truth.
}

ClusterSnapshot Server::clusterSnapshot() {
  ClusterSnapshot C;
  C.Local = statsSnapshot();
  C.LocalFallbacks = LocalFallbacks.load(std::memory_order_relaxed);
  C.VerifyFailures = VerifyFailures.load(std::memory_order_relaxed);
  if (Route) {
    C.Routing = true;
    C.Vnodes = Route->vnodesPerNode();
    C.Shards = Route->clusterProbe();
  }
  return C;
}

void Server::recordLatency(uint64_t Micros) {
  std::lock_guard<std::mutex> Lock(LatencyMutex);
  LatencyWindow[LatencyNext] = Micros;
  LatencyNext = (LatencyNext + 1) % LatencyWindow.size();
  ++LatencyCount;
}

uint64_t Server::retryAfterMillisHint() const {
  uint64_t P50Micros = 0;
  {
    std::lock_guard<std::mutex> Lock(LatencyMutex);
    const size_t N =
        static_cast<size_t>(std::min<uint64_t>(LatencyCount,
                                               LatencyWindow.size()));
    if (N > 0) {
      std::vector<uint64_t> W(LatencyWindow.begin(),
                              LatencyWindow.begin() + N);
      std::nth_element(W.begin(), W.begin() + (N - 1) / 2, W.end());
      P50Micros = W[(N - 1) / 2];
    }
  }
  // One median request per queue slot ahead of the retrier; floor 10 ms so
  // clients never spin, cap 2 s so a latency spike cannot park them.
  const uint64_t Hint =
      (P50Micros / 1000 + 1) * (InFlight.load() + 1);
  return std::min<uint64_t>(std::max<uint64_t>(Hint, 10), 2000);
}

StatsSnapshot Server::statsSnapshot() const {
  StatsSnapshot S;
  S.Compile = Compiles.stats();
  S.Sim = Sims.stats();
  S.Disk = Disk.stats();
  S.Requests = Requests.load();
  S.Rejected = Rejected.load();
  S.Timeouts = Timeouts.load();
  S.QueueDepth = InFlight.load();
  S.QueueLimit = Opts.QueueDepth;
  std::vector<uint64_t> Window;
  {
    std::lock_guard<std::mutex> Lock(LatencyMutex);
    const size_t N = std::min<uint64_t>(LatencyCount, LatencyWindow.size());
    Window.assign(LatencyWindow.begin(), LatencyWindow.begin() + N);
  }
  if (!Window.empty()) {
    std::sort(Window.begin(), Window.end());
    const auto Pct = [&Window](unsigned P) {
      return Window[(Window.size() - 1) * P / 100];
    };
    S.P50Micros = Pct(50);
    S.P90Micros = Pct(90);
    S.P99Micros = Pct(99);
  }
  return S;
}

uint64_t Server::serve(std::istream &In, std::ostream &Out) {
  std::mutex OutMutex;
  const auto Emit = [&Out, &OutMutex](const std::string &Response) {
    std::lock_guard<std::mutex> Lock(OutMutex);
    Out << Response << '\n';
    Out.flush();
  };
  const auto Drain = [this] {
    std::unique_lock<std::mutex> Lock(DrainMutex);
    Drained.wait(Lock, [this] { return InFlight.load() == 0; });
  };

  uint64_t Accepted = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    ++Requests;
    ++Accepted;
    RequestParse P = parseRequest(Line);
    if (!P.ok()) {
      Emit(renderErrorResponse(P.R, P.Error, P.Detail));
      continue;
    }
    // Control plane stays on the reader thread: a stats probe must be able
    // to observe a saturated queue, and shutdown must run after a drain.
    if (P.R.Op == RequestOp::Stats) {
      Emit(process(P.R));
      continue;
    }
    if (P.R.Op == RequestOp::Shutdown) {
      Drain();
      ShutdownRequested.store(true);
      Emit(renderShutdownResponse(P.R, Requests.load()));
      break;
    }
    // Data plane: bounded in-flight window, shed beyond it. The response
    // is an immediate error carrying a backoff hint, not a silent drop.
    if (InFlight.load() >= Opts.QueueDepth) {
      ++Rejected;
      Emit(renderShedResponse(P.R, Opts.QueueDepth, retryAfterMillisHint()));
      continue;
    }
    ++InFlight;
    ThreadPool::global().async([this, Line, R = std::move(P.R), Emit] {
      Emit(processLine(Line, R));
      {
        std::lock_guard<std::mutex> Lock(DrainMutex);
        --InFlight;
        // Notify under the lock: the waiter may tear the Server down the
        // moment it observes zero.
        Drained.notify_all();
      }
    });
  }
  Drain();
  return Accepted;
}

//===----------------------------------------------------------------------===//
// Socket serving: one poll loop, many connections
//===----------------------------------------------------------------------===//

namespace {

/// Self-pipe write end the signal handlers poke; -1 outside
/// serveUnixSocket. Async-signal-safe: the handler only does an atomic
/// load and a write(2).
std::atomic<int> SignalWakeFd{-1};
std::atomic<bool> SignalStop{false};

void onStopSignal(int) {
  SignalStop.store(true, std::memory_order_relaxed);
  const int FD = SignalWakeFd.load(std::memory_order_relaxed);
  if (FD >= 0) {
    const char Byte = 's';
    [[maybe_unused]] const ssize_t W = ::write(FD, &Byte, 1);
  }
}

} // namespace

/// All the state of one poll-based socket session. Lives on
/// serveUnixSocket's stack; workers only ever touch the shared PendingReq
/// blocks and the wake pipe, never the loop state itself.
struct Server::SocketLoop {
  using Clock = std::chrono::steady_clock;

  /// One dispatched data-plane request. Shared between the loop and the
  /// pool worker computing it: the worker fills Response and flips Done;
  /// the loop flips Cancelled when the deadline passes or the connection
  /// dies, after which the result is dropped on the floor.
  struct PendingReq {
    std::atomic<bool> Done{false};
    std::atomic<bool> Cancelled{false};
    std::string Response; ///< Valid once Done is true.
    Request R;
    std::string Line; ///< Verbatim request line, for route forwarding.
    Clock::time_point Deadline{};
    bool HasDeadline = false;
  };

  struct Conn {
    explicit Conn(int FD) : Buf(FD) {}
    FdBuf Buf;
    bool ReadEof = false; ///< Peer closed its write side.
    bool Dead = false;    ///< Abandon: close once, no more I/O.
    std::vector<std::shared_ptr<PendingReq>> Pending;
  };

  explicit SocketLoop(Server &S) : S(S) {}

  Server &S;
  /// Dedicated request workers. The global ThreadPool degrades async() to
  /// an inline call when it has no workers (single-core hosts,
  /// SIMTSR_THREADS=1), which would block the poll loop for the duration
  /// of a compile and make deadlines and multiplexing meaningless — so
  /// the socket front end brings its own threads.
  std::deque<std::shared_ptr<PendingReq>> JobQueue; ///< Guarded by JobMutex.
  std::mutex JobMutex;
  std::condition_variable JobCV;
  bool JobsStopping = false;
  std::vector<std::thread> JobWorkers;
  int Listener = -1;
  int WakeRead = -1;
  int WakeWrite = -1;
  std::vector<std::unique_ptr<Conn>> Conns;
  bool Draining = false;
  /// The connection that asked for shutdown (index into Conns), if the
  /// drain was requested over the wire rather than by signal.
  Conn *ShutdownConn = nullptr;
  Request ShutdownReq;
  bool ShutdownEmitted = false;
  bool FlushDeadlineSet = false;
  Clock::time_point FlushDeadline{};

  void wake() const {
    const char Byte = 'w';
    [[maybe_unused]] const ssize_t W = ::write(WakeWrite, &Byte, 1);
  }

  void killConn(Conn &C) {
    if (C.Dead)
      return;
    C.Dead = true;
    // Whatever was still computing for this peer has no destination now.
    for (const std::shared_ptr<PendingReq> &P : C.Pending)
      P->Cancelled.store(true, std::memory_order_relaxed);
    C.Pending.clear();
  }

  void startWorkers();
  void workerLoop();
  void stopWorkers();
  void handleLine(Conn &C, const std::string &Line);
  void collectResults(Conn &C);
  void sweepDeadlines(Conn &C, Clock::time_point Now);
  int pollTimeoutMillis(Clock::time_point Now) const;
  bool drained() const;
  int run(const std::string &Path);
};

void Server::SocketLoop::startWorkers() {
  // Enough that one stalled request cannot starve every other client, but
  // never more than the in-flight window can keep busy.
  const unsigned N = std::max<unsigned>(
      2, std::min<unsigned>(static_cast<unsigned>(S.Opts.QueueDepth), 8));
  for (unsigned I = 0; I < N; ++I)
    JobWorkers.emplace_back([this] { workerLoop(); });
}

void Server::SocketLoop::workerLoop() {
  while (true) {
    std::shared_ptr<PendingReq> Req;
    {
      std::unique_lock<std::mutex> Lock(JobMutex);
      JobCV.wait(Lock, [this] { return JobsStopping || !JobQueue.empty(); });
      if (JobQueue.empty())
        return; // Stopping with nothing queued.
      Req = std::move(JobQueue.front());
      JobQueue.pop_front();
    }
    Req->Response = S.processLine(Req->Line, Req->R);
    Req->Done.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> Lock(S.DrainMutex);
      --S.InFlight;
      // Notify under the lock: once the waiter observes zero it may
      // destroy the Server, so the condition variable must not be touched
      // after the mutex is released.
      S.Drained.notify_all();
    }
    // Wake strictly last, once every bit of state the loop examines —
    // Done, Response, InFlight — is final. Waking earlier lets the loop
    // run its drained() check against a stale InFlight and then sleep in
    // poll with no further wakeups coming. The write cannot land on a
    // recycled descriptor: teardown joins the workers before closing the
    // pipe.
    wake();
  }
}

void Server::SocketLoop::stopWorkers() {
  {
    std::lock_guard<std::mutex> Lock(JobMutex);
    JobsStopping = true;
  }
  JobCV.notify_all();
  // Workers finish whatever is still queued before exiting, so after the
  // joins every dispatched request — cancelled or not — has completed and
  // InFlight is zero.
  for (std::thread &T : JobWorkers)
    T.join();
  JobWorkers.clear();
}

void Server::SocketLoop::handleLine(Conn &C, const std::string &Line) {
  if (Line.find_first_not_of(" \t\r") == std::string::npos)
    return;
  ++S.Requests;
  RequestParse P = parseRequest(Line);
  if (!P.ok()) {
    C.Buf.queueLine(renderErrorResponse(P.R, P.Error, P.Detail));
    return;
  }
  if (P.R.Op == RequestOp::Stats) {
    C.Buf.queueLine(S.process(P.R));
    return;
  }
  if (P.R.Op == RequestOp::Shutdown) {
    // Stop accepting, let in-flight work finish, answer when drained.
    Draining = true;
    ShutdownConn = &C;
    ShutdownReq = P.R;
    return;
  }
  if (Draining) {
    C.Buf.queueLine(renderErrorResponse(
        P.R, "shutting_down", "daemon is draining; no new work accepted"));
    return;
  }
  if (S.InFlight.load() >= S.Opts.QueueDepth) {
    ++S.Rejected;
    C.Buf.queueLine(renderShedResponse(P.R, S.Opts.QueueDepth,
                                       S.retryAfterMillisHint()));
    return;
  }

  auto Req = std::make_shared<PendingReq>();
  Req->R = std::move(P.R);
  Req->Line = Line;
  if (S.Opts.DeadlineMillis > 0) {
    Req->HasDeadline = true;
    Req->Deadline = Clock::now() +
                    std::chrono::milliseconds(S.Opts.DeadlineMillis);
  }
  C.Pending.push_back(Req);
  ++S.InFlight;
  {
    std::lock_guard<std::mutex> Lock(JobMutex);
    JobQueue.push_back(std::move(Req));
  }
  JobCV.notify_one();
}

void Server::SocketLoop::collectResults(Conn &C) {
  auto It = C.Pending.begin();
  while (It != C.Pending.end()) {
    PendingReq &P = **It;
    if (!P.Done.load(std::memory_order_acquire)) {
      ++It;
      continue;
    }
    if (!P.Cancelled.load(std::memory_order_relaxed))
      C.Buf.queueLine(P.Response);
    It = C.Pending.erase(It);
  }
}

void Server::SocketLoop::sweepDeadlines(Conn &C, Clock::time_point Now) {
  auto It = C.Pending.begin();
  while (It != C.Pending.end()) {
    PendingReq &P = **It;
    if (!P.HasDeadline || Now < P.Deadline ||
        P.Done.load(std::memory_order_acquire)) {
      ++It;
      continue;
    }
    // Answer now; the worker's eventual result is dropped. Its worker
    // slot frees when it actually finishes.
    P.Cancelled.store(true, std::memory_order_relaxed);
    ++S.Timeouts;
    C.Buf.queueLine(renderErrorResponse(
        P.R, "timeout",
        "deadline of " + std::to_string(S.Opts.DeadlineMillis) +
            "ms exceeded"));
    It = C.Pending.erase(It);
  }
}

int Server::SocketLoop::pollTimeoutMillis(Clock::time_point Now) const {
  bool Have = false;
  Clock::time_point Earliest{};
  for (const std::unique_ptr<Conn> &C : Conns)
    for (const std::shared_ptr<PendingReq> &P : C->Pending)
      if (P->HasDeadline && (!Have || P->Deadline < Earliest)) {
        Have = true;
        Earliest = P->Deadline;
      }
  if (FlushDeadlineSet && (!Have || FlushDeadline < Earliest)) {
    Have = true;
    Earliest = FlushDeadline;
  }
  if (!Have)
    return -1;
  const auto Millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(Earliest - Now)
          .count();
  return Millis <= 0 ? 0 : static_cast<int>(std::min<long long>(
                               Millis + 1, 60'000));
}

bool Server::SocketLoop::drained() const {
  if (S.InFlight.load() != 0)
    return false;
  for (const std::unique_ptr<Conn> &C : Conns)
    if (!C->Pending.empty())
      return false;
  return true;
}

int Server::SocketLoop::run(const std::string &Path) {
  // Unix path or host:port TCP — the same forms --route accepts, so a
  // shard fleet can span machines. Stale Unix socket files are unlinked
  // by listenOnAddress.
  bool IsUnix = true;
  Listener = listenOnAddress(Path, IsUnix);
  if (Listener < 0)
    return -1;
  if (!FdBuf::setNonBlocking(Listener)) {
    ::close(Listener);
    return -1;
  }

  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    ::close(Listener);
    return -1;
  }
  WakeRead = Pipe[0];
  WakeWrite = Pipe[1];
  FdBuf::setNonBlocking(WakeRead);
  FdBuf::setNonBlocking(WakeWrite);
  startWorkers();

  // Graceful shutdown on SIGTERM/SIGINT: flag + self-pipe, handled on the
  // next poll iteration. Previous dispositions are restored on exit so
  // embedding tests can install their own handlers around us.
  SignalStop.store(false, std::memory_order_relaxed);
  SignalWakeFd.store(WakeWrite, std::memory_order_relaxed);
  struct sigaction StopAction {};
  StopAction.sa_handler = onStopSignal;
  sigemptyset(&StopAction.sa_mask);
  struct sigaction OldTerm {}, OldInt {};
  ::sigaction(SIGTERM, &StopAction, &OldTerm);
  ::sigaction(SIGINT, &StopAction, &OldInt);

  std::vector<pollfd> Fds;
  std::vector<Conn *> FdConns; ///< Parallel to Fds; null for control fds.
  while (true) {
    const Clock::time_point Now = Clock::now();

    Fds.clear();
    FdConns.clear();
    Fds.push_back({WakeRead, POLLIN, 0});
    FdConns.push_back(nullptr);
    if (!Draining) {
      Fds.push_back({Listener, POLLIN, 0});
      FdConns.push_back(nullptr);
    }
    for (const std::unique_ptr<Conn> &C : Conns) {
      if (C->Dead)
        continue;
      short Events = 0;
      if (!C->ReadEof)
        Events |= POLLIN;
      if (C->Buf.hasPendingOut())
        Events |= POLLOUT;
      if (Events == 0)
        continue;
      Fds.push_back({C->Buf.fd(), Events, 0});
      FdConns.push_back(C.get());
    }

    const int Ready = ::poll(Fds.data(), Fds.size(), pollTimeoutMillis(Now));
    if (Ready < 0 && errno != EINTR) {
      // poll itself failing is unrecoverable; shut down as cleanly as we
      // still can.
      Draining = true;
    }
    if (SignalStop.load(std::memory_order_relaxed))
      Draining = true;

    // Drain the wake pipe: its only job was to interrupt poll.
    char Scratch[256];
    while (::read(WakeRead, Scratch, sizeof(Scratch)) > 0) {
    }

    // Accept every connection that is queued up.
    if (!Draining)
      while (true) {
        const int Client = ::accept(Listener, nullptr, nullptr);
        if (Client < 0)
          break;
        FdBuf::setNonBlocking(Client);
        Conns.push_back(std::make_unique<Conn>(Client));
      }

    // Read whatever arrived; each complete line is one request.
    for (size_t I = 0; I < Fds.size(); ++I) {
      Conn *C = FdConns[I];
      if (!C || C->Dead || !(Fds[I].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      bool More = true;
      while (More && !C->Dead) {
        switch (C->Buf.fill()) {
        case IoResult::Ok:
          break;
        case IoResult::WouldBlock:
          More = false;
          break;
        case IoResult::Eof:
          C->ReadEof = true;
          More = false;
          break;
        case IoResult::Closed:
          killConn(*C);
          More = false;
          break;
        }
        std::string Line;
        while (!C->Dead && C->Buf.nextLine(Line))
          handleLine(*C, Line);
      }
    }

    const Clock::time_point AfterIo = Clock::now();
    for (const std::unique_ptr<Conn> &C : Conns) {
      if (C->Dead)
        continue;
      sweepDeadlines(*C, AfterIo);
      collectResults(*C);
    }

    // Drain finished: answer the shutdown request (once), then it only
    // remains to flush output buffers.
    if (Draining && drained() && !ShutdownEmitted) {
      ShutdownEmitted = true;
      S.ShutdownRequested.store(true);
      if (ShutdownConn && !ShutdownConn->Dead)
        ShutdownConn->Buf.queueLine(
            renderShutdownResponse(ShutdownReq, S.Requests.load()));
      // A peer that never reads could otherwise pin us here forever.
      FlushDeadlineSet = true;
      FlushDeadline = Clock::now() + std::chrono::seconds(5);
    }

    // Push buffered responses out.
    for (const std::unique_ptr<Conn> &C : Conns) {
      if (C->Dead || !C->Buf.hasPendingOut())
        continue;
      if (C->Buf.flushSome() == IoResult::Closed)
        killConn(*C);
    }

    // Reap connections that are finished: dead ones, and ones whose peer
    // hung up with nothing left to compute or flush.
    for (std::unique_ptr<Conn> &C : Conns) {
      if (!C->Dead && C->ReadEof && C->Pending.empty() &&
          !C->Buf.hasPendingOut())
        C->Dead = true;
      if (C->Dead) {
        if (C.get() == ShutdownConn)
          ShutdownConn = nullptr;
        ::close(C->Buf.fd());
        C.reset();
      }
    }
    Conns.erase(std::remove(Conns.begin(), Conns.end(), nullptr),
                Conns.end());

    if (ShutdownEmitted) {
      bool AnyOut = false;
      for (const std::unique_ptr<Conn> &C : Conns)
        AnyOut |= C->Buf.hasPendingOut();
      if (!AnyOut || Clock::now() >= FlushDeadline)
        break;
    }
  }

  // Teardown. Visible work is already drained (drained() gated the exit),
  // but cancelled stragglers may still be computing — join the workers
  // before closing the wake pipe they poke.
  stopWorkers();
  SignalWakeFd.store(-1, std::memory_order_relaxed);
  ::sigaction(SIGTERM, &OldTerm, nullptr);
  ::sigaction(SIGINT, &OldInt, nullptr);
  for (const std::unique_ptr<Conn> &C : Conns)
    ::close(C->Buf.fd());
  Conns.clear();
  ::close(WakeRead);
  ::close(WakeWrite);
  ::close(Listener);
  if (IsUnix)
    ::unlink(Path.c_str());
  return 0;
}

int Server::serveUnixSocket(const std::string &Path) {
  SocketLoop Loop(*this);
  return Loop.run(Path);
}
