//===- Server.cpp - Batched compile-and-simulate daemon -----------------------===//

#include "serve/Server.h"

#include "driver/Driver.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "lint/ConvergenceLint.h"
#include "observe/Remark.h"
#include "sim/Grid.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace simtsr;
using namespace simtsr::serve;

Server::Server(ServerOptions Opts)
    : Opts(Opts), Compiles(Opts.CompileCacheCapacity),
      Sims(Opts.SimCacheCapacity) {
  // 256-sample window: big enough for stable p99 under the bench load,
  // small enough that the percentiles track the recent regime.
  LatencyWindow.assign(256, 0);
}

//===----------------------------------------------------------------------===//
// Compile
//===----------------------------------------------------------------------===//

std::shared_ptr<const CompileEntry>
Server::compileCached(const std::string &Source,
                      const std::string &PipelineName, int SoftThreshold,
                      bool &Cached) {
  const uint64_t Key = compileKeyNamed(Source, PipelineName, SoftThreshold);
  if (std::shared_ptr<const CompileEntry> Hit = Compiles.lookup(Key)) {
    Cached = true;
    return Hit;
  }
  Cached = false;

  auto E = std::make_shared<CompileEntry>();
  E->Key = Key;
  E->PipelineName = PipelineName;

  ParseResult P = parseModule(Source);
  if (!P.ok()) {
    E->Errors = std::move(P.Errors);
    Compiles.insert(E);
    return E;
  }

  observe::RemarkStream Remarks;
  const std::optional<PipelineReport> Report = driver::runConfiguredPipeline(
      *P.M, PipelineName, SoftThreshold, &Remarks);
  if (!Report) {
    E->Errors.push_back("unknown pipeline config '" + PipelineName + "'");
    Compiles.insert(E);
    return E;
  }

  E->Launch = verifyLaunchModule(*P.M);
  if (!E->Launch.Errors.empty()) {
    E->Errors = E->Launch.Errors;
    E->Launch = LaunchVerification{};
    Compiles.insert(E);
    return E;
  }

  E->Ok = true;
  E->M = std::shared_ptr<const Module>(std::move(P.M));
  E->Launch.M = E->M.get();
  E->PostText = printModule(*E->M);
  E->PostDigest = fnv1a(E->PostText);
  if (E->M->size() > 0)
    E->KernelName = E->M->function(0)->name();
  E->RemarksJsonl = Remarks.toJsonl();
  E->RemarkCount = static_cast<unsigned>(Remarks.size());
  E->Downgrades = Report->barrierDowngrades();
  E->VerifierDiagnostics = Report->VerifierDiagnostics;

  // First-insert-wins on a concurrent duplicate; both entries are
  // bit-identical by construction, so serving ours is still correct.
  Compiles.insert(E);
  return E;
}

std::string Server::processCompile(const Request &R) {
  bool Cached = false;
  const std::shared_ptr<const CompileEntry> E =
      compileCached(R.Source, R.Pipeline, R.SoftThreshold, Cached);
  return renderCompileResponse(R, *E, Cached);
}

//===----------------------------------------------------------------------===//
// Simulate
//===----------------------------------------------------------------------===//

namespace {

/// Every launch axis that can change the schedule, folded onto the
/// post-pipeline content digest.
uint64_t simulateKey(const CompileEntry &CE, const std::string &Kernel,
                     const Request &R) {
  uint64_t Key = fnv1aMix(0xcbf29ce484222325ull, CE.PostDigest);
  Key = fnv1a(Kernel, Key);
  Key = fnv1aMix(Key, R.Warps);
  Key = fnv1aMix(Key, R.WarpSize);
  Key = fnv1aMix(Key, R.Seed);
  Key = fnv1aMix(Key, static_cast<uint64_t>(R.Policy));
  Key = fnv1aMix(Key, R.Args.size());
  for (const int64_t A : R.Args)
    Key = fnv1aMix(Key, static_cast<uint64_t>(A));
  return Key;
}

} // namespace

std::string Server::processSimulate(const Request &R) {
  bool CompileCached = false;
  std::shared_ptr<const CompileEntry> CE;
  if (R.HasModuleKey) {
    CE = Compiles.lookup(R.ModuleKey);
    if (!CE)
      return renderErrorResponse(
          R, "unknown_module",
          "no cached module under key " + jsonHex64(R.ModuleKey) +
              " (compile first, or resend \"source\")");
    CompileCached = true;
  } else {
    CE = compileCached(R.Source, R.Pipeline, R.SoftThreshold, CompileCached);
  }
  if (!CE->Ok) {
    std::string Joined;
    for (const std::string &Err : CE->Errors) {
      if (!Joined.empty())
        Joined += "; ";
      Joined += Err;
    }
    return renderErrorResponse(R, "compile_error", Joined);
  }

  const std::string Kernel = R.Kernel.empty() ? CE->KernelName : R.Kernel;
  const Function *F = CE->M->functionByName(Kernel);
  if (!F)
    return renderErrorResponse(R, "unknown_kernel",
                               "no function '@" + Kernel +
                                   "' in the compiled module");

  const uint64_t Key = simulateKey(*CE, Kernel, R);
  if (std::shared_ptr<const SimEntry> Hit = Sims.lookup(Key))
    return renderSimulateResponse(R, *CE, *Hit, CompileCached, true);

  LaunchConfig Config;
  Config.WarpSize = R.WarpSize;
  Config.Seed = R.Seed;
  Config.Policy = R.Policy;
  Config.KernelArgs = R.Args;
  Config.CollectTraceDigest = true;
  Config.Verified = &CE->Launch;
  if (Opts.MaxIssueSlots)
    Config.MaxIssueSlots = Opts.MaxIssueSlots;
  if (Opts.MaxWallMillis)
    Config.MaxWallMillis = Opts.MaxWallMillis;

  const GridResult G = runGrid(*CE->M, F, Config,
                               static_cast<unsigned>(R.Warps));

  auto E = std::make_shared<SimEntry>();
  E->Key = Key;
  E->Ok = G.Ok;
  E->Status = G.Ok ? "finished" : getRunStatusName(G.FailStatus);
  E->FailMessage = G.FailMessage;
  E->WarpsRun = G.WarpsRun;
  E->Cycles = G.TotalCycles;
  E->IssueSlots = G.TotalIssueSlots;
  E->SimtEfficiency = G.SimtEfficiency;
  E->Checksum = G.CombinedChecksum;
  E->TraceDigest = G.TraceDigest;
  Sims.insert(E);
  return renderSimulateResponse(R, *CE, *E, CompileCached, false);
}

//===----------------------------------------------------------------------===//
// Lint
//===----------------------------------------------------------------------===//

std::string Server::processLint(const Request &R) {
  bool CompileCached = false;
  const std::shared_ptr<const CompileEntry> CE =
      compileCached(R.Source, R.Pipeline, R.SoftThreshold, CompileCached);
  if (!CE->Ok) {
    std::string Joined;
    for (const std::string &Err : CE->Errors) {
      if (!Joined.empty())
        Joined += "; ";
      Joined += Err;
    }
    return renderErrorResponse(R, "compile_error", Joined);
  }

  // The analyzer wants a mutable module (it recomputes predecessors), and
  // the cached one is shared and immutable — lint a private clone. The
  // daemon's lint is origin-blind, like linting the printed module text.
  const std::unique_ptr<Module> M = CE->M->clone();
  lint::LintOptions LO;
  LO.WarpSize = R.WarpSize;
  LO.Remarks = false;
  const lint::LintResult LR = runConvergenceLint(*M, LO);

  LintSummary S;
  S.Errors = LR.count(lint::LintSeverity::Error);
  S.Warnings = LR.count(lint::LintSeverity::Warning);
  S.Notes = LR.count(lint::LintSeverity::Note);
  for (const lint::LintDiagnostic &D : LR.Diagnostics) {
    if (D.Severity == lint::LintSeverity::Note && !R.Notes)
      continue;
    S.Findings.push_back(D.format());
  }
  return renderLintResponse(R, *CE, CompileCached, S);
}

//===----------------------------------------------------------------------===//
// Dispatch, stats, serve loop
//===----------------------------------------------------------------------===//

std::string Server::process(const Request &R) {
  const auto Start = std::chrono::steady_clock::now();
  std::string Response;
  switch (R.Op) {
  case RequestOp::Compile:
    Response = processCompile(R);
    break;
  case RequestOp::Simulate:
    Response = processSimulate(R);
    break;
  case RequestOp::Lint:
    Response = processLint(R);
    break;
  case RequestOp::Stats:
    return renderStatsResponse(R, statsSnapshot());
  case RequestOp::Shutdown:
    return renderShutdownResponse(R, Requests.load());
  }
  const auto End = std::chrono::steady_clock::now();
  recordLatency(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count()));
  return Response;
}

std::string Server::handle(const std::string &Line) {
  ++Requests;
  const RequestParse P = parseRequest(Line);
  if (!P.ok())
    return renderErrorResponse(P.R, P.Error, P.Detail);
  return process(P.R);
}

void Server::recordLatency(uint64_t Micros) {
  std::lock_guard<std::mutex> Lock(LatencyMutex);
  LatencyWindow[LatencyNext] = Micros;
  LatencyNext = (LatencyNext + 1) % LatencyWindow.size();
  ++LatencyCount;
}

StatsSnapshot Server::statsSnapshot() const {
  StatsSnapshot S;
  S.Compile = Compiles.stats();
  S.Sim = Sims.stats();
  S.Requests = Requests.load();
  S.Rejected = Rejected.load();
  S.QueueDepth = InFlight.load();
  S.QueueLimit = Opts.QueueDepth;
  std::vector<uint64_t> Window;
  {
    std::lock_guard<std::mutex> Lock(LatencyMutex);
    const size_t N = std::min<uint64_t>(LatencyCount, LatencyWindow.size());
    Window.assign(LatencyWindow.begin(), LatencyWindow.begin() + N);
  }
  if (!Window.empty()) {
    std::sort(Window.begin(), Window.end());
    const auto Pct = [&Window](unsigned P) {
      return Window[(Window.size() - 1) * P / 100];
    };
    S.P50Micros = Pct(50);
    S.P90Micros = Pct(90);
    S.P99Micros = Pct(99);
  }
  return S;
}

uint64_t Server::serve(std::istream &In, std::ostream &Out) {
  std::mutex OutMutex;
  const auto Emit = [&Out, &OutMutex](const std::string &Response) {
    std::lock_guard<std::mutex> Lock(OutMutex);
    Out << Response << '\n';
    Out.flush();
  };
  const auto Drain = [this] {
    std::unique_lock<std::mutex> Lock(DrainMutex);
    Drained.wait(Lock, [this] { return InFlight.load() == 0; });
  };

  uint64_t Accepted = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    ++Requests;
    ++Accepted;
    RequestParse P = parseRequest(Line);
    if (!P.ok()) {
      Emit(renderErrorResponse(P.R, P.Error, P.Detail));
      continue;
    }
    // Control plane stays on the reader thread: a stats probe must be able
    // to observe a saturated queue, and shutdown must run after a drain.
    if (P.R.Op == RequestOp::Stats) {
      Emit(process(P.R));
      continue;
    }
    if (P.R.Op == RequestOp::Shutdown) {
      Drain();
      ShutdownRequested.store(true);
      Emit(renderShutdownResponse(P.R, Requests.load()));
      break;
    }
    // Data plane: bounded in-flight window, shed beyond it. The response
    // is an immediate error, not a silent drop — the client can back off.
    if (InFlight.load() >= Opts.QueueDepth) {
      ++Rejected;
      Emit(renderErrorResponse(P.R, "queue_full",
                               "in-flight limit " +
                                   std::to_string(Opts.QueueDepth) +
                                   " reached; retry later"));
      continue;
    }
    ++InFlight;
    ThreadPool::global().async([this, R = std::move(P.R), Emit] {
      Emit(process(R));
      {
        std::lock_guard<std::mutex> Lock(DrainMutex);
        --InFlight;
      }
      Drained.notify_all();
    });
  }
  Drain();
  return Accepted;
}

int Server::serveUnixSocket(const std::string &Path) {
  const int Listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listener < 0)
    return -1;

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Listener);
    return -1;
  }
  std::copy(Path.begin(), Path.end(), Addr.sun_path);
  ::unlink(Path.c_str()); // Stale socket from a previous run.
  if (::bind(Listener, reinterpret_cast<const sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(Listener, 4) != 0) {
    ::close(Listener);
    return -1;
  }

  while (!ShutdownRequested.load()) {
    const int Client = ::accept(Listener, nullptr, nullptr);
    if (Client < 0)
      break;
    // One connection at a time: read lines off the fd, answer on it.
    // FdBuf adapts the socket to the iostream-based serve() loop.
    struct FdBuf final : std::streambuf {
      explicit FdBuf(int FD) : FD(FD) { setg(Buf, Buf, Buf); }
      int_type underflow() override {
        const ssize_t N = ::read(FD, Buf, sizeof(Buf));
        if (N <= 0)
          return traits_type::eof();
        setg(Buf, Buf, Buf + N);
        return traits_type::to_int_type(Buf[0]);
      }
      int_type overflow(int_type C) override {
        if (C != traits_type::eof()) {
          const char Byte = traits_type::to_char_type(C);
          if (::write(FD, &Byte, 1) != 1)
            return traits_type::eof();
        }
        return C;
      }
      std::streamsize xsputn(const char *S, std::streamsize N) override {
        std::streamsize Done = 0;
        while (Done < N) {
          const ssize_t W = ::write(FD, S + Done, N - Done);
          if (W <= 0)
            break;
          Done += W;
        }
        return Done;
      }
      int FD;
      char Buf[4096];
    };
    FdBuf InBuf(Client), OutBuf(Client);
    std::istream In(&InBuf);
    std::ostream Out(&OutBuf);
    serve(In, Out);
    ::close(Client);
  }
  ::close(Listener);
  ::unlink(Path.c_str());
  return ShutdownRequested.load() ? 0 : -1;
}
