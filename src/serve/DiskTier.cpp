//===- DiskTier.cpp - Crash-safe disk tier under the serve caches -------------===//

#include "serve/DiskTier.h"

#include "support/DurableFile.h"
#include "support/FaultInject.h"
#include "support/Json.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

using namespace simtsr;
using namespace simtsr::serve;

//===----------------------------------------------------------------------===//
// Payload codecs: length-prefixed fields, deterministic byte-for-byte
//===----------------------------------------------------------------------===//

namespace {

constexpr const char *DiskMagic = "simtsr-disk-v1";

void putU64(std::string &S, uint64_t V) {
  S += std::to_string(V);
  S += '\n';
}

void putStr(std::string &S, const std::string &V) {
  S += std::to_string(V.size());
  S += ':';
  S += V;
  S += '\n';
}

struct Cursor {
  const std::string &S;
  size_t Pos = 0;
  bool Fail = false;
};

uint64_t getU64(Cursor &C) {
  if (C.Fail)
    return 0;
  const size_t NL = C.S.find('\n', C.Pos);
  if (NL == std::string::npos) {
    C.Fail = true;
    return 0;
  }
  const std::string Field = C.S.substr(C.Pos, NL - C.Pos);
  C.Pos = NL + 1;
  if (Field.empty() ||
      Field.find_first_not_of("0123456789") != std::string::npos) {
    C.Fail = true;
    return 0;
  }
  errno = 0;
  const uint64_t V = std::strtoull(Field.c_str(), nullptr, 10);
  if (errno != 0)
    C.Fail = true;
  return V;
}

std::string getStr(Cursor &C) {
  if (C.Fail)
    return "";
  const size_t Colon = C.S.find(':', C.Pos);
  if (Colon == std::string::npos || Colon == C.Pos ||
      C.S.find_first_not_of("0123456789", C.Pos) != Colon) {
    C.Fail = true;
    return "";
  }
  const uint64_t Len = std::strtoull(C.S.c_str() + C.Pos, nullptr, 10);
  C.Pos = Colon + 1;
  if (Len > C.S.size() - C.Pos) {
    C.Fail = true;
    return "";
  }
  std::string V = C.S.substr(C.Pos, Len);
  C.Pos += Len;
  if (C.Pos >= C.S.size() || C.S[C.Pos] != '\n') {
    C.Fail = true;
    return "";
  }
  ++C.Pos;
  return V;
}

} // namespace

std::string simtsr::serve::encodeCompileEntry(const CompileEntry &E) {
  std::string P;
  putU64(P, E.Key);
  putU64(P, E.Ok ? 1 : 0);
  putStr(P, E.PipelineName);
  putStr(P, E.KernelName);
  putU64(P, E.PostDigest);
  putU64(P, E.RemarkCount);
  putU64(P, E.Downgrades);
  putU64(P, E.Errors.size());
  for (const std::string &Err : E.Errors)
    putStr(P, Err);
  putU64(P, E.VerifierDiagnostics.size());
  for (const std::string &D : E.VerifierDiagnostics)
    putStr(P, D);
  putStr(P, E.RemarksJsonl);
  putStr(P, E.PostText);
  return P;
}

bool simtsr::serve::decodeCompileEntry(const std::string &Payload,
                                       CompileEntry &Out) {
  Cursor C{Payload};
  Out.Key = getU64(C);
  Out.Ok = getU64(C) != 0;
  Out.PipelineName = getStr(C);
  Out.KernelName = getStr(C);
  Out.PostDigest = getU64(C);
  Out.RemarkCount = static_cast<unsigned>(getU64(C));
  Out.Downgrades = static_cast<unsigned>(getU64(C));
  const uint64_t NumErrors = getU64(C);
  if (C.Fail || NumErrors > 4096)
    return false;
  Out.Errors.clear();
  for (uint64_t I = 0; I < NumErrors; ++I)
    Out.Errors.push_back(getStr(C));
  const uint64_t NumDiags = getU64(C);
  if (C.Fail || NumDiags > 4096)
    return false;
  Out.VerifierDiagnostics.clear();
  for (uint64_t I = 0; I < NumDiags; ++I)
    Out.VerifierDiagnostics.push_back(getStr(C));
  Out.RemarksJsonl = getStr(C);
  Out.PostText = getStr(C);
  return !C.Fail && C.Pos == Payload.size();
}

std::string simtsr::serve::encodeSimEntry(const SimEntry &E) {
  std::string P;
  putU64(P, E.Key);
  putU64(P, E.Ok ? 1 : 0);
  putStr(P, E.Status);
  putStr(P, E.FailMessage);
  putU64(P, E.WarpsRun);
  putU64(P, E.Cycles);
  putU64(P, E.IssueSlots);
  // Bit pattern, not decimal: the disk round-trip must be exact for the
  // bit-identity oracle to hold.
  uint64_t EffBits = 0;
  static_assert(sizeof(EffBits) == sizeof(E.SimtEfficiency));
  std::memcpy(&EffBits, &E.SimtEfficiency, sizeof(EffBits));
  putU64(P, EffBits);
  putU64(P, E.Checksum);
  putU64(P, E.TraceDigest);
  return P;
}

bool simtsr::serve::decodeSimEntry(const std::string &Payload,
                                   SimEntry &Out) {
  Cursor C{Payload};
  Out.Key = getU64(C);
  Out.Ok = getU64(C) != 0;
  Out.Status = getStr(C);
  Out.FailMessage = getStr(C);
  Out.WarpsRun = static_cast<unsigned>(getU64(C));
  Out.Cycles = getU64(C);
  Out.IssueSlots = getU64(C);
  const uint64_t EffBits = getU64(C);
  std::memcpy(&Out.SimtEfficiency, &EffBits, sizeof(EffBits));
  Out.Checksum = getU64(C);
  Out.TraceDigest = getU64(C);
  return !C.Fail && C.Pos == Payload.size();
}

//===----------------------------------------------------------------------===//
// DiskTier
//===----------------------------------------------------------------------===//

DiskTier::DiskTier(std::string Dir) : Dir(std::move(Dir)) {
  if (this->Dir.empty())
    return;
  std::string Error;
  if (!createDirectories(this->Dir, Error)) {
    // Unusable directory: start degraded rather than failing every store.
    Degraded.store(true, std::memory_order_relaxed);
    WriteErrors.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string DiskTier::entryPath(char Kind, uint64_t Key) const {
  return Dir + "/" + Kind + "-" + jsonHex64(Key).substr(2) + ".sde";
}

void DiskTier::quarantinePath(const std::string &Path) {
  Quarantined.fetch_add(1, std::memory_order_relaxed);
  const std::string QDir = Dir + "/quarantine";
  std::string Error;
  const size_t Slash = Path.find_last_of('/');
  const std::string Base =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  if (createDirectories(QDir, Error) &&
      ::rename(Path.c_str(), (QDir + "/" + Base).c_str()) == 0)
    return;
  // Could not move it aside; at minimum make sure it is never read again.
  ::unlink(Path.c_str());
}

void DiskTier::quarantineEntry(char Kind, uint64_t Key) {
  if (Dir.empty())
    return;
  quarantinePath(entryPath(Kind, Key));
}

std::optional<std::string> DiskTier::load(char Kind, uint64_t Key) {
  if (!enabled())
    return std::nullopt;
  const std::string Path = entryPath(Kind, Key);

  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (In.bad()) {
    // A read error (not absence, not corruption): stop trusting the disk.
    Misses.fetch_add(1, std::memory_order_relaxed);
    Degraded.store(true, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::string File = Buf.str();

  // Header: "simtsr-disk-v1 <kind> <key> <size> <checksum>\n".
  const auto Corrupt = [this, &Path]() -> std::optional<std::string> {
    quarantinePath(Path);
    Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };
  const size_t HeaderEnd = File.find('\n');
  if (HeaderEnd == std::string::npos)
    return Corrupt();
  std::istringstream Header(File.substr(0, HeaderEnd));
  std::string Magic, KindField, KeyField, SizeField, SumField;
  Header >> Magic >> KindField >> KeyField >> SizeField >> SumField;
  if (!Header || Magic != DiskMagic || KindField.size() != 1 ||
      KindField[0] != Kind)
    return Corrupt();
  char *End = nullptr;
  const uint64_t StoredKey = std::strtoull(KeyField.c_str(), &End, 16);
  if (!End || *End != '\0' || StoredKey != Key)
    return Corrupt();
  const uint64_t Size = std::strtoull(SizeField.c_str(), &End, 10);
  const uint64_t Sum = std::strtoull(SumField.c_str(), &End, 16);
  const std::string Payload = File.substr(HeaderEnd + 1);
  if (Payload.size() != Size || fnv1a(Payload) != Sum)
    return Corrupt();

  Hits.fetch_add(1, std::memory_order_relaxed);
  return Payload;
}

void DiskTier::store(char Kind, uint64_t Key, const std::string &Payload) {
  if (!enabled())
    return;

  std::string File = DiskMagic;
  File += ' ';
  File += Kind;
  File += ' ';
  File += jsonHex64(Key).substr(2);
  File += ' ';
  File += std::to_string(Payload.size());
  File += ' ';
  File += jsonHex64(fnv1a(Payload)).substr(2);
  File += '\n';
  File += Payload;

  // The `corrupt` fault class flips one byte of the full image, so both
  // header and payload corruption paths get exercised; the checksum (or
  // header validation) must catch it on the next load.
  FaultInjector::active().corruptBytes(File);

  std::string Error;
  if (durableWriteFile(entryPath(Kind, Key), File, Error)) {
    Writes.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  WriteErrors.fetch_add(1, std::memory_order_relaxed);
  Degraded.store(true, std::memory_order_relaxed);
}

DiskTierStats DiskTier::stats() const {
  DiskTierStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Writes = Writes.load(std::memory_order_relaxed);
  S.WriteErrors = WriteErrors.load(std::memory_order_relaxed);
  S.Quarantined = Quarantined.load(std::memory_order_relaxed);
  S.Degraded = Degraded.load(std::memory_order_relaxed);
  return S;
}
