//===- Router.h - consistent-hash request routing to shards ----*- C++ -*-===//
///
/// \file
/// Sharded serving: `simtsr-serve --route a.sock,b.sock,c.sock` turns a
/// daemon into a router that owns no authoritative cache of its own.
/// Every compile/simulate/lint request is hashed onto a consistent-hash
/// ring (support/HashRing.h) by its *content* key — the same FNV-1a
/// compile key the caches use — and forwarded verbatim over the JSON-lines
/// protocol to the owning shard. Identical sources therefore always land
/// on the same shard, which is what turns N processes into one big cache
/// instead of N small cold ones.
///
/// The routing key is chosen so both request forms agree:
///   - source requests key on compileKeyNamed(source, pipeline, soft) —
///     exactly the module key the shard's compile will return;
///   - "module" requests key on that returned key directly.
/// A simulate-by-module therefore routes to the shard that compiled the
/// module, and never sees unknown_module because of routing.
///
/// Failure policy (docs/SERVE.md "Sharded serving"): a transport failure
/// on the primary shard retries once on the ring successor; a shed
/// (queue_full / shutting_down) or a second transport failure falls back
/// to executing the request locally. Fallback is always correct — every
/// tier computes the same bits, as the response digests prove — so a dead
/// shard costs latency, never availability or answers.
///
/// Shard addresses are Unix socket paths (anything containing '/') or
/// "host:port" TCP endpoints; the same forms work for --socket.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SERVE_ROUTER_H
#define SIMTSR_SERVE_ROUTER_H

#include "serve/Protocol.h"
#include "support/FdBuf.h"
#include "support/HashRing.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace simtsr::serve {

/// True when \p Addr names a "host:port" TCP endpoint rather than a Unix
/// socket path. The discriminator: no '/', and a trailing ":<digits>".
bool isTcpAddress(const std::string &Addr);

/// Connects to a shard address (Unix path or host:port). Returns a
/// nonblocking connected fd, or -1. TCP connects honor \p TimeoutMillis.
int connectToAddress(const std::string &Addr, uint64_t TimeoutMillis);

/// Binds and listens on \p Addr (Unix path or host:port; a stale Unix
/// socket file is unlinked first). Returns the listener fd or -1;
/// \p IsUnix reports which form was used so the caller knows whether to
/// unlink on teardown.
int listenOnAddress(const std::string &Addr, bool &IsUnix);

/// The content key a request routes on. Requests that carry no content
/// (stats/cluster/shutdown) are answered locally and never reach this.
uint64_t routeKey(const Request &R);

struct RouterOptions {
  std::vector<std::string> Shards;
  unsigned Vnodes = HashRing::DefaultVnodes;
  /// Per-request forward deadline, connect included. On expiry the
  /// connection is closed (the reply would be unpaired) and the request
  /// falls back per the failure policy.
  uint64_t ForwardTimeoutMillis = 5000;
};

/// What happened to one forward attempt chain.
struct ForwardResult {
  bool Answered = false;  ///< Response holds the remote response line.
  bool Shed = false;      ///< Remote shed (queue_full/shutting_down).
  std::string Response;
  std::string ShardAddress; ///< The shard that answered (when Answered).
};

/// Thread-safe forwarding client over a fixed shard set. One connection
/// per shard, serialized by a per-shard mutex: the protocol allows
/// out-of-order responses, but one-outstanding-per-connection keeps
/// request/response pairing trivial and failure containment exact.
class Router {
public:
  explicit Router(const RouterOptions &Opts);
  ~Router();

  Router(const Router &) = delete;
  Router &operator=(const Router &) = delete;

  /// Forwards \p Line (the client's verbatim request line) to the shard
  /// owning \p R's route key, retrying once on the ring successor after a
  /// transport failure. Not Answered => the caller must execute locally.
  ForwardResult forward(const std::string &Line, const Request &R);

  /// Probes every shard with a stats request and returns one row per
  /// shard (insertion order), merging router-side counters with the
  /// shard's own. Unreachable shards get Reachable=false rows.
  std::vector<ShardClusterStat> clusterProbe();

  unsigned vnodesPerNode() const { return Ring.vnodesPerNode(); }
  const std::vector<std::string> &shardAddresses() const {
    return Ring.nodes();
  }

private:
  struct Shard {
    std::string Address;
    std::mutex M; ///< Serializes the connection (one request in flight).
    int Fd = -1;
    std::unique_ptr<FdBuf> Buf;
    std::atomic<uint64_t> Forwarded{0};
    std::atomic<uint64_t> Errors{0};
    std::atomic<uint64_t> Shed{0};
    // Recent forward round-trip times, for the cluster verb's p50.
    std::mutex LatM;
    std::vector<uint64_t> LatWindow;
    size_t LatNext = 0;
  };

  Shard &shardFor(const std::string &Address);
  /// One request/response round trip on \p S's connection. On any
  /// transport problem (connect failure, short I/O, EOF, deadline, id
  /// mismatch) the connection is closed and false returned.
  bool roundTrip(Shard &S, const std::string &Line, int64_t WantId,
                 std::string &Response);
  static void closeShardLocked(Shard &S);

  RouterOptions Opts;
  HashRing Ring;
  std::vector<std::unique_ptr<Shard>> Shards; ///< Parallel to Ring.nodes().
};

} // namespace simtsr::serve

#endif // SIMTSR_SERVE_ROUTER_H
