//===- DiskTier.h - Crash-safe disk tier under the serve caches -*- C++ -*-===//
///
/// \file
/// The persistence layer that makes warm starts survive restarts: every
/// compile and simulate entry the daemon computes is also written to a
/// directory of content-addressed files, and a fresh process fills its
/// in-memory LRU caches from that directory on demand. Keys are the same
/// FNV content axes as the memory tier, so an entry written by any daemon
/// instance is valid for every other — there is no session state on disk.
///
/// Crash safety has two halves:
///
///  - writes go through durableWriteFile (temp file + fsync + atomic
///    rename), so a kill -9 at any instant leaves either the old complete
///    entry, the new complete entry, or an orphaned temp file — never a
///    torn entry under the real name;
///  - every entry carries an FNV-1a checksum over its payload; a read
///    that fails the header or checksum check (torn some other way, bit
///    rot, hostile edit) is **quarantined** — moved aside into
///    `quarantine/` for post-mortem — counted, and treated as a miss, so
///    a corrupt entry is never served.
///
/// I/O errors (as opposed to corruption) flip the tier into **degraded**
/// mode: the daemon keeps serving from memory, stops touching the disk,
/// and reports `"degraded":true` plus error counters in `stats`. The
/// fault-injection harness (support/FaultInject.h) drives both paths
/// deterministically under test: `enospc`/`fsync_fail` exercise
/// degradation, `corrupt` exercises quarantine.
///
/// File format (version simtsr-disk-v1), one entry per file
/// `{c,s}-<16-hex key>.sde`:
///
///   simtsr-disk-v1 <kind> <key> <payload-bytes> <fnv1a(payload)>\n
///   <payload>
///
/// The payload is the length-prefixed field encoding of a CompileEntry
/// (minus the in-memory Module, which is re-parsed from the stored
/// post-pipeline text) or a SimEntry (all fields; the efficiency double
/// is stored as its bit pattern so round-trips are exact).
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SERVE_DISKTIER_H
#define SIMTSR_SERVE_DISKTIER_H

#include "serve/Cache.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace simtsr::serve {

struct DiskTierStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Writes = 0;
  uint64_t WriteErrors = 0;
  uint64_t Quarantined = 0;
  bool Degraded = false;
};

class DiskTier {
public:
  /// \p Dir empty disables the tier entirely (all operations no-op).
  explicit DiskTier(std::string Dir);

  /// Whether load/store would touch the disk right now (configured and
  /// not degraded).
  bool enabled() const {
    return !Dir.empty() && !Degraded.load(std::memory_order_relaxed);
  }
  bool degraded() const { return Degraded.load(std::memory_order_relaxed); }

  /// Loads the payload stored under (\p Kind, \p Key). Returns nullopt on
  /// a miss; a corrupt entry is quarantined and reported as a miss; an
  /// I/O error degrades the tier and reports a miss.
  std::optional<std::string> load(char Kind, uint64_t Key);

  /// Persists \p Payload under (\p Kind, \p Key) via an atomic durable
  /// write. A failure counts a write error and degrades the tier.
  void store(char Kind, uint64_t Key, const std::string &Payload);

  /// Moves the entry under (\p Kind, \p Key) into quarantine/ — for
  /// callers that discover an entry is bad only after decoding it (e.g. a
  /// stored module that no longer parses).
  void quarantineEntry(char Kind, uint64_t Key);

  DiskTierStats stats() const;

private:
  std::string entryPath(char Kind, uint64_t Key) const;
  void quarantinePath(const std::string &Path);

  std::string Dir;
  std::atomic<bool> Degraded{false};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Writes{0};
  std::atomic<uint64_t> WriteErrors{0};
  std::atomic<uint64_t> Quarantined{0};
};

/// Payload codecs. Encoding is deterministic; decode returns false on any
/// structural problem (the caller treats that as corruption). The decoded
/// CompileEntry carries no Module — the caller re-parses PostText and
/// re-verifies the launch to rehydrate it.
std::string encodeCompileEntry(const CompileEntry &E);
bool decodeCompileEntry(const std::string &Payload, CompileEntry &Out);
std::string encodeSimEntry(const SimEntry &E);
bool decodeSimEntry(const std::string &Payload, SimEntry &Out);

} // namespace simtsr::serve

#endif // SIMTSR_SERVE_DISKTIER_H
