//===- Protocol.cpp - serve request/response protocol -------------------------===//

#include "serve/Protocol.h"

#include "driver/Driver.h"
#include "support/Json.h"
#include "transform/PassStage.h"
#include "transform/Pipeline.h"

#include <cstdlib>

using namespace simtsr;
using namespace simtsr::serve;

const char *simtsr::serve::protocolVersion() { return "simtsr-serve-v2"; }

const char *simtsr::serve::getRequestOpName(RequestOp Op) {
  switch (Op) {
  case RequestOp::Compile:
    return "compile";
  case RequestOp::Simulate:
    return "simulate";
  case RequestOp::Lint:
    return "lint";
  case RequestOp::Stats:
    return "stats";
  case RequestOp::Cluster:
    return "cluster";
  case RequestOp::Shutdown:
    return "shutdown";
  }
  return "unknown";
}

namespace {

bool parseOpName(const std::string &Name, RequestOp &Out) {
  if (Name == "compile")
    Out = RequestOp::Compile;
  else if (Name == "simulate")
    Out = RequestOp::Simulate;
  else if (Name == "lint")
    Out = RequestOp::Lint;
  else if (Name == "stats")
    Out = RequestOp::Stats;
  else if (Name == "cluster")
    Out = RequestOp::Cluster;
  else if (Name == "shutdown")
    Out = RequestOp::Shutdown;
  else
    return false;
  return true;
}

/// "0x"-prefixed 16-digit hex (the jsonHex64 format) -> uint64.
bool parseHexKey(const std::string &S, uint64_t &Out) {
  if (S.size() < 3 || S[0] != '0' || (S[1] != 'x' && S[1] != 'X'))
    return false;
  char *End = nullptr;
  Out = std::strtoull(S.c_str() + 2, &End, 16);
  return End && *End == '\0' && End != S.c_str() + 2;
}

struct FieldError {
  std::string Code, Detail;
  explicit operator bool() const { return !Code.empty(); }
};

FieldError bad(const std::string &Detail) {
  return {"bad_request", Detail};
}

/// Applies one request field; returns a FieldError on any problem.
FieldError applyField(Request &R, const std::string &Key,
                      const JsonValue &V) {
  if (Key == "id")
    return {}; // Consumed before dispatch.
  if (Key == "op")
    return {}; // Likewise.
  if (Key == "source") {
    if (!V.isString())
      return bad("\"source\" must be a string");
    R.Source = V.asString();
    R.HasSource = true;
    return {};
  }
  if (Key == "module") {
    if (!V.isString() || !parseHexKey(V.asString(), R.ModuleKey))
      return bad("\"module\" must be a \"0x...\" compile key");
    R.HasModuleKey = true;
    return {};
  }
  if (Key == "pipeline") {
    const std::string Name = V.asString();
    if (!V.isString() || (Name != "none" && !findPipelineDef(Name))) {
      // Structured rejection: a distinct error code plus the full catalog,
      // so clients can discover the vocabulary instead of guessing.
      std::string Detail = "unknown pipeline '" + Name + "'; known: none";
      for (const PipelineDef &D : pipelineCatalog())
        Detail += ", " + D.Name;
      return {"unknown_pipeline", Detail};
    }
    R.Pipeline = Name;
    return {};
  }
  if (Key == "soft_threshold") {
    if (!V.isIntegral() || V.asInt() < 0 || V.asInt() > 64)
      return bad("\"soft_threshold\" must be an integer in [0, 64]");
    R.SoftThreshold = static_cast<int>(V.asInt());
    return {};
  }
  if (Key == "policy") {
    if (!V.isString() || !driver::parsePolicyName(V.asString(), R.Policy))
      return bad("unknown policy '" + V.asString() + "'");
    return {};
  }
  if (Key == "progress") {
    if (!V.isString() || !parseProgressSpec(V.asString(), R.Progress))
      return bad("unknown progress model '" + V.asString() + "'");
    return {};
  }
  if (Key == "warps") {
    if (!V.isIntegral() || V.asInt() < 1 || V.asInt() > 4096)
      return bad("\"warps\" must be an integer in [1, 4096]");
    R.Warps = static_cast<uint64_t>(V.asInt());
    return {};
  }
  if (Key == "warp_size") {
    if (!V.isIntegral() || V.asInt() < 1 || V.asInt() > 64)
      return bad("\"warp_size\" must be an integer in [1, 64]");
    R.WarpSize = static_cast<unsigned>(V.asInt());
    return {};
  }
  if (Key == "seed") {
    if (!V.isIntegral() || V.asInt() < 0)
      return bad("\"seed\" must be a non-negative integer");
    R.Seed = static_cast<uint64_t>(V.asInt());
    return {};
  }
  if (Key == "args") {
    if (!V.isArray())
      return bad("\"args\" must be an array of integers");
    R.Args.clear();
    for (const JsonValue &Item : V.items()) {
      if (!Item.isIntegral())
        return bad("\"args\" must be an array of integers");
      R.Args.push_back(Item.asInt());
    }
    return {};
  }
  if (Key == "kernel") {
    if (!V.isString())
      return bad("\"kernel\" must be a string");
    R.Kernel = V.asString();
    return {};
  }
  if (Key == "want_module") {
    if (!V.isBool())
      return bad("\"want_module\" must be a boolean");
    R.WantModule = V.asBool();
    return {};
  }
  if (Key == "want_remarks") {
    if (!V.isBool())
      return bad("\"want_remarks\" must be a boolean");
    R.WantRemarks = V.asBool();
    return {};
  }
  if (Key == "notes") {
    if (!V.isBool())
      return bad("\"notes\" must be a boolean");
    R.Notes = V.asBool();
    return {};
  }
  if (Key == "fix") {
    if (!V.isBool())
      return bad("\"fix\" must be a boolean");
    R.Fix = V.asBool();
    return {};
  }
  return bad("unknown field \"" + Key + "\"");
}

} // namespace

RequestParse simtsr::serve::parseRequest(const std::string &Line) {
  RequestParse P;
  const JsonParseResult J = parseJson(Line);
  if (!J.ok()) {
    P.Error = "parse_error";
    P.Detail = J.Error;
    return P;
  }
  if (!J.Value.isObject()) {
    P.Error = "bad_request";
    P.Detail = "request must be a JSON object";
    return P;
  }

  // The id first, so even a broken request gets a correlated response.
  if (const JsonValue *Id = J.Value.field("id")) {
    if (!Id->isIntegral() || Id->asInt() < 0) {
      P.Error = "bad_request";
      P.Detail = "\"id\" must be a non-negative integer";
      return P;
    }
    P.R.Id = Id->asInt();
    P.R.HasId = true;
  }
  const JsonValue *Op = J.Value.field("op");
  if (!Op || !Op->isString() || !parseOpName(Op->asString(), P.R.Op)) {
    P.Error = "bad_request";
    P.Detail = Op ? "unknown op '" + Op->asString() + "'"
                  : "missing \"op\" field";
    return P;
  }
  if (!P.R.HasId) {
    P.Error = "bad_request";
    P.Detail = "missing \"id\" field";
    return P;
  }

  P.R.Pipeline = P.R.Op == RequestOp::Lint ? "none" : "pdom";
  for (const auto &[Key, Value] : J.Value.fields()) {
    if (const FieldError E = applyField(P.R, Key, Value)) {
      P.Error = E.Code;
      P.Detail = E.Detail;
      return P;
    }
  }

  // Op-specific shape checks.
  switch (P.R.Op) {
  case RequestOp::Compile:
  case RequestOp::Lint:
    if (!P.R.HasSource) {
      P.Error = "bad_request";
      P.Detail = "\"source\" is required for op \"" +
                 std::string(getRequestOpName(P.R.Op)) + "\"";
    }
    break;
  case RequestOp::Simulate:
    if (P.R.HasSource == P.R.HasModuleKey) {
      P.Error = "bad_request";
      P.Detail = "simulate needs exactly one of \"source\" and \"module\"";
    }
    break;
  case RequestOp::Stats:
  case RequestOp::Cluster:
  case RequestOp::Shutdown:
    break;
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Response rendering
//===----------------------------------------------------------------------===//

namespace {

/// Opens the common response prefix: {"id":N,"ok":...,"op":"..."}.
void beginResponse(JsonWriter &W, const Request &R, bool Ok) {
  W.beginObject();
  if (R.HasId) {
    W.key("id");
    W.number(R.Id);
  }
  W.key("ok");
  W.boolean(Ok);
  W.key("op");
  W.string(getRequestOpName(R.Op));
}

std::string fixed6(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

/// The stats counter fields, shared by the stats response body and the
/// "local" object inside a cluster response.
void writeStatsFields(JsonWriter &W, const StatsSnapshot &S) {
  W.key("requests");
  W.numberUnsigned(S.Requests);
  W.key("rejected");
  W.numberUnsigned(S.Rejected);
  W.key("queue_depth");
  W.numberUnsigned(S.QueueDepth);
  W.key("queue_limit");
  W.numberUnsigned(S.QueueLimit);
  W.key("timeouts");
  W.numberUnsigned(S.Timeouts);
  W.key("degraded");
  W.boolean(S.Disk.Degraded);
  for (const auto &[Name, C] :
       {std::pair<const char *, const CacheStats &>{"compile_cache",
                                                    S.Compile},
        std::pair<const char *, const CacheStats &>{"sim_cache", S.Sim}}) {
    W.key(Name);
    W.beginObject();
    W.key("hits");
    W.numberUnsigned(C.Hits);
    W.key("misses");
    W.numberUnsigned(C.Misses);
    W.key("entries");
    W.numberUnsigned(C.Entries);
    W.key("evictions");
    W.numberUnsigned(C.Evictions);
    W.endObject();
  }
  W.key("disk_cache");
  W.beginObject();
  W.key("hits");
  W.numberUnsigned(S.Disk.Hits);
  W.key("misses");
  W.numberUnsigned(S.Disk.Misses);
  W.key("writes");
  W.numberUnsigned(S.Disk.Writes);
  W.key("write_errors");
  W.numberUnsigned(S.Disk.WriteErrors);
  W.key("quarantined");
  W.numberUnsigned(S.Disk.Quarantined);
  W.endObject();
  W.key("latency_us");
  W.beginObject();
  W.key("p50");
  W.numberUnsigned(S.P50Micros);
  W.key("p90");
  W.numberUnsigned(S.P90Micros);
  W.key("p99");
  W.numberUnsigned(S.P99Micros);
  W.endObject();
}

} // namespace

std::string simtsr::serve::renderErrorResponse(const Request &R,
                                               const std::string &Code,
                                               const std::string &Detail) {
  JsonWriter W;
  beginResponse(W, R, false);
  W.key("error");
  W.string(Code);
  W.key("detail");
  W.string(Detail);
  W.endObject();
  return W.take();
}

std::string simtsr::serve::renderShedResponse(const Request &R,
                                              uint64_t QueueLimit,
                                              uint64_t RetryAfterMs) {
  JsonWriter W;
  beginResponse(W, R, false);
  W.key("error");
  W.string("queue_full");
  W.key("detail");
  W.string("in-flight limit " + std::to_string(QueueLimit) +
           " reached; retry with backoff");
  W.key("retry_after_ms");
  W.numberUnsigned(RetryAfterMs);
  W.endObject();
  return W.take();
}

std::string simtsr::serve::renderCompileResponse(const Request &R,
                                                 const CompileEntry &E,
                                                 bool Cached) {
  JsonWriter W;
  beginResponse(W, R, E.Ok);
  W.key("cached");
  W.boolean(Cached);
  if (!E.Ok) {
    W.key("error");
    W.string("compile_error");
    W.key("detail");
    std::string Joined;
    for (const std::string &Err : E.Errors) {
      if (!Joined.empty())
        Joined += "; ";
      Joined += Err;
    }
    W.string(Joined);
    W.endObject();
    return W.take();
  }
  W.key("module");
  W.string(jsonHex64(E.Key));
  W.key("post_digest");
  W.string(jsonHex64(E.PostDigest));
  W.key("kernel");
  W.string(E.KernelName);
  W.key("pipeline");
  W.string(E.PipelineName);
  W.key("verifier_clean");
  W.boolean(E.VerifierDiagnostics.empty());
  W.key("downgrades");
  W.numberUnsigned(E.Downgrades);
  W.key("remarks");
  W.numberUnsigned(E.RemarkCount);
  if (R.WantModule) {
    W.key("source");
    W.string(E.PostText);
  }
  if (R.WantRemarks) {
    W.key("remarks_jsonl");
    W.string(E.RemarksJsonl);
  }
  W.endObject();
  return W.take();
}

std::string simtsr::serve::renderSimulateResponse(const Request &R,
                                                  const CompileEntry &CE,
                                                  const SimEntry &E,
                                                  bool CompileCached,
                                                  bool SimCached) {
  JsonWriter W;
  beginResponse(W, R, E.Ok);
  W.key("cached");
  W.boolean(SimCached);
  W.key("compile_cached");
  W.boolean(CompileCached);
  W.key("module");
  W.string(jsonHex64(CE.Key));
  W.key("post_digest");
  W.string(jsonHex64(CE.PostDigest));
  W.key("status");
  W.string(E.Status);
  if (!E.Ok) {
    W.key("detail");
    W.string(E.FailMessage);
  }
  W.key("warps");
  W.numberUnsigned(E.WarpsRun);
  W.key("cycles");
  W.numberUnsigned(E.Cycles);
  W.key("issue_slots");
  W.numberUnsigned(E.IssueSlots);
  W.key("simt_efficiency");
  W.raw(fixed6(E.SimtEfficiency));
  W.key("checksum");
  W.string(jsonHex64(E.Checksum));
  W.key("trace_digest");
  W.string(jsonHex64(E.TraceDigest));
  W.endObject();
  return W.take();
}

std::string simtsr::serve::renderLintResponse(const Request &R,
                                              const CompileEntry &CE,
                                              bool CompileCached,
                                              const LintSummary &L) {
  JsonWriter W;
  beginResponse(W, R, true);
  W.key("compile_cached");
  W.boolean(CompileCached);
  W.key("module");
  W.string(jsonHex64(CE.Key));
  W.key("errors");
  W.numberUnsigned(L.Errors);
  W.key("warnings");
  W.numberUnsigned(L.Warnings);
  W.key("notes");
  W.numberUnsigned(L.Notes);
  W.key("findings");
  W.beginArray();
  for (const std::string &F : L.Findings)
    W.string(F);
  W.endArray();
  // The fix block only exists when the request asked for it, so lint
  // responses without "fix": true stay byte-identical to v2 clients.
  if (L.FixRequested) {
    W.key("fix_status");
    W.string(L.FixStatus);
    W.key("fix_edits");
    W.beginArray();
    for (const std::string &E : L.FixEdits)
      W.string(E);
    W.endArray();
    W.key("fix_certified");
    W.string("static");
    if (!L.BlockingWitness.empty()) {
      W.key("fix_blocking_witness");
      W.string(L.BlockingWitness);
    }
    W.key("repaired_source");
    W.string(L.RepairedSource);
  }
  W.endObject();
  return W.take();
}

std::string simtsr::serve::renderStatsResponse(const Request &R,
                                               const StatsSnapshot &S) {
  JsonWriter W;
  beginResponse(W, R, true);
  W.key("schema");
  W.string(protocolVersion());
  writeStatsFields(W, S);
  W.endObject();
  return W.take();
}

std::string simtsr::serve::renderClusterResponse(const Request &R,
                                                 const ClusterSnapshot &C) {
  JsonWriter W;
  beginResponse(W, R, true);
  W.key("schema");
  W.string(protocolVersion());
  W.key("routing");
  W.boolean(C.Routing);
  W.key("vnodes");
  W.numberUnsigned(C.Vnodes);
  W.key("local_fallbacks");
  W.numberUnsigned(C.LocalFallbacks);
  W.key("verify_failures");
  W.numberUnsigned(C.VerifyFailures);

  // Fleet aggregates first, so dashboards can read one object without
  // walking the per-shard rows.
  uint64_t Forwarded = 0, Errors = 0, Shed = 0, Requests = 0;
  uint64_t Hits = 0, Misses = 0;
  unsigned Reachable = 0;
  for (const ShardClusterStat &S : C.Shards) {
    Forwarded += S.Forwarded;
    Errors += S.Errors;
    Shed += S.Shed;
    if (S.Reachable) {
      ++Reachable;
      Requests += S.Requests;
      Hits += S.CompileHits + S.SimHits;
      Misses += S.CompileMisses + S.SimMisses;
    }
  }
  W.key("fleet");
  W.beginObject();
  W.key("shards");
  W.numberUnsigned(C.Shards.size());
  W.key("reachable");
  W.numberUnsigned(Reachable);
  W.key("forwarded");
  W.numberUnsigned(Forwarded);
  W.key("errors");
  W.numberUnsigned(Errors);
  W.key("shed");
  W.numberUnsigned(Shed);
  W.key("requests");
  W.numberUnsigned(Requests);
  W.key("cache_hits");
  W.numberUnsigned(Hits);
  W.key("cache_misses");
  W.numberUnsigned(Misses);
  W.endObject();

  W.key("shards");
  W.beginArray();
  for (const ShardClusterStat &S : C.Shards) {
    W.beginObject();
    W.key("address");
    W.string(S.Address);
    W.key("reachable");
    W.boolean(S.Reachable);
    W.key("forwarded");
    W.numberUnsigned(S.Forwarded);
    W.key("errors");
    W.numberUnsigned(S.Errors);
    W.key("shed");
    W.numberUnsigned(S.Shed);
    W.key("forward_p50_us");
    W.numberUnsigned(S.ForwardP50Micros);
    if (S.Reachable) {
      W.key("requests");
      W.numberUnsigned(S.Requests);
      W.key("compile_hits");
      W.numberUnsigned(S.CompileHits);
      W.key("compile_misses");
      W.numberUnsigned(S.CompileMisses);
      W.key("sim_hits");
      W.numberUnsigned(S.SimHits);
      W.key("sim_misses");
      W.numberUnsigned(S.SimMisses);
      W.key("p50_us");
      W.numberUnsigned(S.P50Micros);
    }
    W.endObject();
  }
  W.endArray();

  // The local server's own counters, same shape as a stats response body.
  W.key("local");
  W.beginObject();
  writeStatsFields(W, C.Local);
  W.endObject();
  W.endObject();
  return W.take();
}

std::string simtsr::serve::renderShutdownResponse(const Request &R,
                                                  uint64_t Served) {
  JsonWriter W;
  beginResponse(W, R, true);
  W.key("served");
  W.numberUnsigned(Served);
  W.endObject();
  return W.take();
}
