//===- Server.h - Batched compile-and-simulate daemon ----------*- C++ -*-===//
///
/// \file
/// The long-lived service behind tools/simtsr-serve: accepts JSON-lines
/// requests (compile, simulate, lint, stats, shutdown) over any istream —
/// stdin in the CLI, a Unix socket connection, a stringstream in tests —
/// dispatches them asynchronously onto the global ThreadPool, and writes
/// request-tagged responses as they complete (out of order by design).
///
/// Load shedding: at most Options.QueueDepth requests are in flight; a
/// request arriving beyond that is answered immediately with a
/// "queue_full" error instead of being buffered without bound. stats and
/// shutdown are control-plane requests handled inline on the reader
/// thread, so they stay responsive under load and a stats probe can
/// observe a saturated queue.
///
/// The compile and simulate caches are content-addressed (serve/Cache.h);
/// handle() is the synchronous single-request entry the unit tests, the
/// golden protocol tests and `simtsr-bench --serve` use — it shares the
/// caches and counters with the async path.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SERVE_SERVER_H
#define SIMTSR_SERVE_SERVER_H

#include "serve/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace simtsr::serve {

class Router;

struct ServerOptions {
  /// Maximum in-flight async requests before new work is shed with a
  /// "queue_full" error. 0 sheds everything (used to test the path).
  uint64_t QueueDepth = 64;
  uint64_t CompileCacheCapacity = 256;
  uint64_t SimCacheCapacity = 1024;
  /// Per-request issue-slot budget, bounding runaway simulations. Matches
  /// LaunchConfig's default when 0.
  uint64_t MaxIssueSlots = 0;
  /// Per-request wall-clock watchdog in ms (0 disables).
  uint64_t MaxWallMillis = 0;
  /// Directory for the crash-safe disk tier under both caches (empty
  /// disables persistence). See serve/DiskTier.h.
  std::string DiskCacheDir;
  /// Socket sessions only: a data-plane request still unanswered this
  /// many ms after dispatch is answered with a "timeout" error and its
  /// eventual result dropped (0 disables). Pair with MaxWallMillis so the
  /// abandoned simulation also stops burning a pool worker.
  uint64_t DeadlineMillis = 0;
  /// Shard addresses (Unix paths or host:port) to route data-plane
  /// requests to by content key (serve/Router.h). Empty = single-instance
  /// mode: everything executes locally.
  std::vector<std::string> RouteShards;
  /// Virtual nodes per shard on the routing ring.
  unsigned RouteVnodes = 64;
  /// Per-forward deadline before falling back to local execution.
  uint64_t RouteTimeoutMillis = 5000;
  /// Paranoia mode: re-execute every forwarded request locally and check
  /// the remote digests (module/post_digest/checksum/trace_digest) match.
  /// Costs the full local compute, so it is a test/bench switch.
  bool RouteVerify = false;
};

class Server {
public:
  explicit Server(ServerOptions Opts = {});
  ~Server();

  /// Handles one request line synchronously and returns the response line
  /// (no trailing newline). Deterministic given the cache state. With
  /// RouteShards set, data-plane requests are forwarded to their owning
  /// shard first (falling back to local execution on failure).
  std::string handle(const std::string &Line);

  /// Blocking session loop: reads JSON-lines from \p In until EOF or a
  /// shutdown request, writes responses to \p Out (each flushed with its
  /// newline; interleaving-safe). All accepted requests are drained
  /// before returning. \returns the number of requests accepted.
  uint64_t serve(std::istream &In, std::ostream &Out);

  /// Listens on a Unix stream socket at \p Path and serves concurrent
  /// connections through one poll-based readiness loop: nonblocking
  /// accept, per-connection line framing (support/FdBuf.h), data-plane
  /// dispatch onto the shared ThreadPool, per-request deadlines
  /// (Options.DeadlineMillis), and graceful shutdown — a shutdown request
  /// or SIGTERM/SIGINT stops accepting, answers late data-plane requests
  /// with "shutting_down", drains in-flight work and flushes every
  /// response before returning. Removes any stale socket file first.
  /// Returns 0 on a clean shutdown, -1 on a socket setup error.
  int serveUnixSocket(const std::string &Path);

  StatsSnapshot statsSnapshot() const;
  /// The fleet view behind the "cluster" verb: local stats plus one
  /// probed row per routed shard (empty when unrouted).
  ClusterSnapshot clusterSnapshot();

private:
  struct SocketLoop;

  /// Routing-aware dispatch: forwards data-plane requests to the owning
  /// shard when routing is on (\p Line travels verbatim), executes
  /// locally otherwise or on fallback.
  std::string processLine(const std::string &Line, const Request &R);
  std::string process(const Request &R);
  std::string processCompile(const Request &R);
  std::string processSimulate(const Request &R);
  std::string processLint(const Request &R);

  /// Compile via the content-addressed cache. \p Cached reports whether
  /// the entry was served from cache (memory or disk).
  std::shared_ptr<const CompileEntry>
  compileCached(const std::string &Source, const std::string &PipelineName,
                int SoftThreshold, bool &Cached);

  /// Rehydrates a disk-tier compile payload into a full entry (re-parses
  /// the stored post-pipeline text, re-verifies the launch). Null when
  /// the payload does not decode — the caller quarantines it.
  std::shared_ptr<const CompileEntry>
  rehydrateCompile(uint64_t Key, const std::string &Payload);

  /// RouteVerify: recomputes \p R locally and cross-checks the remote
  /// response's digest fields. Returns the remote response when they
  /// agree, the local one (plus a counter bump) when they do not.
  std::string verifyForwarded(const Request &R, const std::string &Remote);

  void recordLatency(uint64_t Micros);
  /// Backoff hint attached to queue_full responses: scaled from the
  /// recent latency window and current queue occupancy.
  uint64_t retryAfterMillisHint() const;

  const ServerOptions Opts;
  CompileCache Compiles;
  SimCache Sims;
  DiskTier Disk;
  std::unique_ptr<Router> Route; ///< Null in single-instance mode.

  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Rejected{0};
  std::atomic<uint64_t> Timeouts{0};
  std::atomic<uint64_t> LocalFallbacks{0};
  std::atomic<uint64_t> VerifyFailures{0};
  std::atomic<uint64_t> InFlight{0};
  std::atomic<bool> ShutdownRequested{false};

  mutable std::mutex LatencyMutex;
  std::vector<uint64_t> LatencyWindow; ///< Ring buffer, newest overwrite.
  size_t LatencyNext = 0;
  uint64_t LatencyCount = 0;

  std::mutex DrainMutex;
  std::condition_variable Drained;
};

} // namespace simtsr::serve

#endif // SIMTSR_SERVE_SERVER_H
