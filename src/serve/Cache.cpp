//===- Cache.cpp - Content-addressed compile and simulate caches --------------===//

#include "serve/Cache.h"

using namespace simtsr;
using namespace simtsr::serve;

std::string simtsr::serve::pipelineCacheAxes(const PipelineOptions &O) {
  // Every axis that can change the compiled module, spelled explicitly so
  // a new PipelineOptions field that matters is a conscious addition here
  // (and a cache-key change, which is exactly what it should be).
  std::string S = "pdom=";
  S += O.PdomSync ? '1' : '0';
  S += ";sr=";
  S += O.ApplySR ? '1' : '0';
  S += ";soft=" + std::to_string(O.SR.SoftThreshold);
  S += ";exitbar=";
  S += O.SR.RegionExitBarrier ? '1' : '0';
  S += ";strip=";
  S += O.StripPredicts ? '1' : '0';
  S += ";interproc=";
  S += O.Interprocedural ? '1' : '0';
  S += ";deconflict=";
  S += O.Deconflict == DeconflictStrategy::Static ? "static" : "dynamic";
  S += ";realloc=";
  S += O.ReallocBarriers ? '1' : '0';
  return S;
}

uint64_t simtsr::serve::compileKey(const std::string &Source,
                                   const PipelineOptions &O) {
  // Chain source and axes through one digest; the separator keeps
  // (source + axes) concatenation unambiguous.
  uint64_t Hash = fnv1a(Source);
  Hash = fnv1a("\x1f", Hash);
  return fnv1a(pipelineCacheAxes(O), Hash);
}

uint64_t simtsr::serve::compileKeyNamed(const std::string &Source,
                                        const std::string &PipelineName,
                                        int SoftThreshold) {
  std::string Axes = "none";
  if (PipelineName != "none") {
    const std::optional<PipelineOptions> O =
        standardPipelineByName(PipelineName, SoftThreshold);
    Axes = O ? pipelineCacheAxes(*O) : "unknown:" + PipelineName;
  }
  uint64_t Hash = fnv1a(Source);
  Hash = fnv1a("\x1f", Hash);
  return fnv1a(Axes, Hash);
}
