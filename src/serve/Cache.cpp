//===- Cache.cpp - Content-addressed compile and simulate caches --------------===//

#include "serve/Cache.h"

using namespace simtsr;
using namespace simtsr::serve;

std::string simtsr::serve::pipelineCacheAxes(const PipelineSpec &S) {
  // The pipeline's identity is its composition: the ordered stage list,
  // then every parameter a stage reads, spelled explicitly so a new
  // PipelineParams field that matters is a conscious addition here (and a
  // cache-key change, which is exactly what it should be).
  std::string Axes = "stages=";
  for (size_t I = 0; I < S.Stages.size(); ++I) {
    if (I)
      Axes += ',';
    Axes += S.Stages[I];
  }
  Axes += ";soft=" + std::to_string(S.Params.SR.SoftThreshold);
  Axes += ";exitbar=";
  Axes += S.Params.SR.RegionExitBarrier ? '1' : '0';
  Axes += ";deconflict=";
  Axes += S.Params.Deconflict == DeconflictStrategy::Static ? "static"
                                                            : "dynamic";
  Axes += ";meld=" + std::to_string(S.Params.Meld.MinPairs) + "/" +
          std::to_string(S.Params.Meld.MaxIterations);
  return Axes;
}

uint64_t simtsr::serve::compileKey(const std::string &Source,
                                   const PipelineSpec &S) {
  // Chain source and axes through one digest; the separator keeps
  // (source + axes) concatenation unambiguous.
  uint64_t Hash = fnv1a(Source);
  Hash = fnv1a("\x1f", Hash);
  return fnv1a(pipelineCacheAxes(S), Hash);
}

uint64_t simtsr::serve::compileKeyNamed(const std::string &Source,
                                        const std::string &PipelineName,
                                        int SoftThreshold) {
  std::string Axes = "none";
  if (PipelineName != "none") {
    const std::optional<PipelineSpec> S =
        standardPipelineSpec(PipelineName, SoftThreshold);
    Axes = S ? pipelineCacheAxes(*S) : "unknown:" + PipelineName;
  }
  uint64_t Hash = fnv1a(Source);
  Hash = fnv1a("\x1f", Hash);
  return fnv1a(Axes, Hash);
}
