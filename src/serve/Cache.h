//===- Cache.h - Content-addressed compile and simulate caches -*- C++ -*-===//
///
/// \file
/// The serve daemon's memory: repeated work is answered from here instead
/// of re-running the pass stack or the simulator.
///
/// Everything is keyed by content, never by session state:
///
///  - a *compile key* is the FNV-1a-64 digest of (source text, canonical
///    pipeline-axis string) — the axis string is the pipeline's ordered
///    stage list plus stage parameters, so the same kernel compiled under
///    the same stage composition hits the cache no matter who sends it,
///    when, or through which named alias;
///  - a *post digest* fingerprints the post-pipeline module text — two
///    different (source, pipeline) pairs that compile to the same code
///    share downstream simulation results;
///  - a *simulate key* mixes the post digest with every launch axis that
///    can change the schedule (kernel name, warps, warp size, seed,
///    scheduler policy, kernel arguments).
///
/// Cached results are bit-identical to cold runs by construction: the
/// entry stores the deterministic outputs (module text, remarks, SimStats,
/// trace digest), and the observe-layer digests let callers prove it
/// (tests/serve/ServeCacheTest.cpp does, across every pipeline config).
///
/// Both caches are bounded LRU maps, safe for concurrent access; entries
/// are immutable once inserted and handed out as shared_ptr-to-const so a
/// hit never races an eviction.
///
//===----------------------------------------------------------------------===//

#ifndef SIMTSR_SERVE_CACHE_H
#define SIMTSR_SERVE_CACHE_H

#include "ir/Module.h"
#include "sim/Warp.h"
#include "support/Hash.h"
#include "transform/PassStage.h"
#include "transform/Pipeline.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace simtsr::serve {

// Keying is plain FNV-1a (support/Hash.h); re-exported here because every
// serve call site historically spelled these serve::fnv1a.
using ::simtsr::fnv1a;
using ::simtsr::fnv1aMix;

/// Canonical serialization of a pipeline's identity: the ordered stage
/// list plus every parameter the stages read. Two specs with equal axis
/// strings compile any source identically. A PipelineOptions argument
/// converts implicitly through its legacy stage list.
/// scripts/serve_client.py mirrors this format bit for bit.
std::string pipelineCacheAxes(const PipelineSpec &S);

/// Content address of compiling \p Source under \p S.
uint64_t compileKey(const std::string &Source, const PipelineSpec &S);

/// compileKey by standard config name; "none" (no passes) keys on the
/// literal axis string "none". \p SoftThreshold only matters for configs
/// with a soft-threshold axis, exactly as in the pipeline catalog.
uint64_t compileKeyNamed(const std::string &Source,
                         const std::string &PipelineName, int SoftThreshold);

/// One compiled module, or the diagnostics explaining why it did not
/// compile (failures are cached too: same source, same answer).
struct CompileEntry {
  uint64_t Key = 0;
  std::string PipelineName;
  bool Ok = false;
  /// Parse/launch-verifier diagnostics when !Ok.
  std::vector<std::string> Errors;
  /// Post-pipeline module; immutable (simulation runs take const refs).
  std::shared_ptr<const Module> M;
  std::string PostText;    ///< printModule(*M) — the content layer.
  uint64_t PostDigest = 0; ///< fnv1a(PostText).
  std::string KernelName;  ///< First function; the default launch target.
  std::string RemarksJsonl;
  unsigned RemarkCount = 0;
  unsigned Downgrades = 0;
  std::vector<std::string> VerifierDiagnostics;
  /// verifyLaunchModule(*M), computed once and reused by every simulate
  /// launch of this entry (Launch.M points at *M above).
  LaunchVerification Launch;
};

/// One simulation outcome. Every field is deterministic given the
/// simulate key, which is what makes caching sound.
struct SimEntry {
  uint64_t Key = 0;
  bool Ok = false;
  std::string Status; ///< "finished", "deadlock", "trap", ...
  std::string FailMessage;
  unsigned WarpsRun = 0;
  uint64_t Cycles = 0;
  uint64_t IssueSlots = 0;
  double SimtEfficiency = 0.0;
  uint64_t Checksum = 0;
  uint64_t TraceDigest = 0;
};

struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Entries = 0;
  uint64_t Evictions = 0;
};

/// Bounded LRU map from 64-bit content keys to immutable entries.
template <typename EntryT> class ContentCache {
public:
  explicit ContentCache(size_t Capacity) : Capacity(Capacity) {}

  /// \returns the cached entry (promoting it to most-recently-used) or
  /// null. Counts a hit or a miss.
  std::shared_ptr<const EntryT> lookup(uint64_t Key) {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Map.find(Key);
    if (It == Map.end()) {
      ++Stat.Misses;
      return nullptr;
    }
    ++Stat.Hits;
    Recency.splice(Recency.begin(), Recency, It->second.Where);
    return It->second.Entry;
  }

  /// Inserts \p E under its key; a concurrent duplicate insert keeps the
  /// first entry (both are bit-identical by construction). Evicts the
  /// least-recently-used entry beyond capacity.
  void insert(std::shared_ptr<const EntryT> E) {
    std::lock_guard<std::mutex> Lock(Mutex);
    const uint64_t Key = E->Key;
    if (Map.count(Key))
      return;
    Recency.push_front(Key);
    Map.emplace(Key, Slot{std::move(E), Recency.begin()});
    if (Map.size() > Capacity) {
      const uint64_t Victim = Recency.back();
      Recency.pop_back();
      Map.erase(Victim);
      ++Stat.Evictions;
    }
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    CacheStats S = Stat;
    S.Entries = Map.size();
    return S;
  }

private:
  struct Slot {
    std::shared_ptr<const EntryT> Entry;
    std::list<uint64_t>::iterator Where;
  };

  mutable std::mutex Mutex;
  const size_t Capacity;
  std::unordered_map<uint64_t, Slot> Map;
  std::list<uint64_t> Recency; ///< Front = most recently used.
  CacheStats Stat;
};

using CompileCache = ContentCache<CompileEntry>;
using SimCache = ContentCache<SimEntry>;

} // namespace simtsr::serve

#endif // SIMTSR_SERVE_CACHE_H
