//===- Router.cpp - consistent-hash request routing to shards -----------------===//

#include "serve/Router.h"

#include "serve/Cache.h"
#include "support/Json.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace simtsr;
using namespace simtsr::serve;

//===----------------------------------------------------------------------===//
// Addresses
//===----------------------------------------------------------------------===//

bool simtsr::serve::isTcpAddress(const std::string &Addr) {
  if (Addr.find('/') != std::string::npos)
    return false;
  const size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos || Colon + 1 >= Addr.size())
    return false;
  for (size_t I = Colon + 1; I < Addr.size(); ++I)
    if (!std::isdigit(static_cast<unsigned char>(Addr[I])))
      return false;
  return true;
}

namespace {

bool parseTcpAddress(const std::string &Addr, std::string &Host,
                     uint16_t &Port) {
  const size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos)
    return false;
  Host = Addr.substr(0, Colon);
  char *End = nullptr;
  const unsigned long P = std::strtoul(Addr.c_str() + Colon + 1, &End, 10);
  if (!End || *End != '\0' || P == 0 || P > 65535)
    return false;
  Port = static_cast<uint16_t>(P);
  return true;
}

/// Polls \p Fd for \p Events for up to \p TimeoutMs (EINTR-safe).
/// Returns true when the fd became ready.
bool waitFor(int Fd, short Events, int TimeoutMs) {
  pollfd P{Fd, Events, 0};
  while (true) {
    const int N = ::poll(&P, 1, TimeoutMs);
    if (N > 0)
      return (P.revents & (Events | POLLHUP | POLLERR)) != 0;
    if (N == 0)
      return false; // Deadline.
    if (errno != EINTR)
      return false;
  }
}

} // namespace

int simtsr::serve::connectToAddress(const std::string &Addr,
                                    uint64_t TimeoutMillis) {
  if (!isTcpAddress(Addr)) {
    sockaddr_un SA{};
    SA.sun_family = AF_UNIX;
    if (Addr.size() >= sizeof(SA.sun_path))
      return -1;
    std::memcpy(SA.sun_path, Addr.c_str(), Addr.size() + 1);
    const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    // Unix connects complete (or fail) immediately; no timeout dance.
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) != 0 ||
        !FdBuf::setNonBlocking(Fd)) {
      ::close(Fd);
      return -1;
    }
    return Fd;
  }

  std::string Host;
  uint16_t Port = 0;
  if (!parseTcpAddress(Addr, Host, Port))
    return -1;
  if (Host.empty() || Host == "localhost")
    Host = "127.0.0.1";
  sockaddr_in SA{};
  SA.sin_family = AF_INET;
  SA.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &SA.sin_addr) != 1)
    return -1;
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (!FdBuf::setNonBlocking(Fd)) {
    ::close(Fd);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(Fd);
      return -1;
    }
    const int Ms = TimeoutMillis > INT_MAX
                       ? INT_MAX
                       : static_cast<int>(TimeoutMillis);
    int Err = 0;
    socklen_t Len = sizeof(Err);
    if (!waitFor(Fd, POLLOUT, Ms) ||
        ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &Len) != 0 || Err != 0) {
      ::close(Fd);
      return -1;
    }
  }
  return Fd;
}

int simtsr::serve::listenOnAddress(const std::string &Addr, bool &IsUnix) {
  IsUnix = !isTcpAddress(Addr);
  if (IsUnix) {
    sockaddr_un SA{};
    SA.sun_family = AF_UNIX;
    if (Addr.size() >= sizeof(SA.sun_path))
      return -1;
    std::memcpy(SA.sun_path, Addr.c_str(), Addr.size() + 1);
    ::unlink(Addr.c_str()); // A stale socket file from a dead daemon.
    const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) != 0 ||
        ::listen(Fd, 64) != 0) {
      ::close(Fd);
      return -1;
    }
    return Fd;
  }

  std::string Host;
  uint16_t Port = 0;
  if (!parseTcpAddress(Addr, Host, Port))
    return -1;
  sockaddr_in SA{};
  SA.sin_family = AF_INET;
  SA.sin_port = htons(Port);
  if (Host.empty() || Host == "0.0.0.0")
    SA.sin_addr.s_addr = htonl(INADDR_ANY);
  else if (Host == "localhost")
    SA.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  else if (::inet_pton(AF_INET, Host.c_str(), &SA.sin_addr) != 1)
    return -1;
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  const int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) != 0 ||
      ::listen(Fd, 64) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

//===----------------------------------------------------------------------===//
// Routing key
//===----------------------------------------------------------------------===//

uint64_t simtsr::serve::routeKey(const Request &R) {
  // A "module" reference *is* the compile key the owning shard handed out,
  // and a source request keys on the compile key its compile will get —
  // so simulate-by-module always routes to the shard holding the module.
  if (R.HasModuleKey)
    return R.ModuleKey;
  return compileKeyNamed(R.Source, R.Pipeline, R.SoftThreshold);
}

//===----------------------------------------------------------------------===//
// Router
//===----------------------------------------------------------------------===//

Router::Router(const RouterOptions &Opts) : Opts(Opts), Ring(Opts.Vnodes) {
  for (const std::string &Addr : Opts.Shards)
    Ring.addNode(Addr);
  for (const std::string &Addr : Ring.nodes()) {
    auto S = std::make_unique<Shard>();
    S->Address = Addr;
    Shards.push_back(std::move(S));
  }
}

Router::~Router() {
  for (auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    closeShardLocked(*S);
  }
}

Router::Shard &Router::shardFor(const std::string &Address) {
  for (auto &S : Shards)
    if (S->Address == Address)
      return *S;
  return *Shards.front(); // Unreachable: addresses come from the ring.
}

void Router::closeShardLocked(Shard &S) {
  if (S.Fd >= 0)
    ::close(S.Fd);
  S.Fd = -1;
  S.Buf.reset();
}

bool Router::roundTrip(Shard &S, const std::string &Line, int64_t WantId,
                       std::string &Response) {
  std::lock_guard<std::mutex> Lock(S.M);
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(Opts.ForwardTimeoutMillis);
  auto RemainingMs = [&]() -> int {
    const auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          Deadline - std::chrono::steady_clock::now())
                          .count();
    if (Left <= 0)
      return 0;
    return Left > INT_MAX ? INT_MAX : static_cast<int>(Left);
  };
  auto Fail = [&]() {
    // A half-done round trip leaves the connection unpaired (a late reply
    // would correlate with the wrong request) — abandon it.
    closeShardLocked(S);
    return false;
  };

  if (S.Fd < 0) {
    S.Fd = connectToAddress(S.Address, Opts.ForwardTimeoutMillis);
    if (S.Fd < 0)
      return false;
    S.Buf = std::make_unique<FdBuf>(S.Fd);
  }

  FdBuf &B = *S.Buf;
  B.queueLine(Line);
  while (B.hasPendingOut()) {
    const IoResult R = B.flushSome();
    if (R == IoResult::Closed || R == IoResult::Eof)
      return Fail();
    if (R == IoResult::WouldBlock && !waitFor(S.Fd, POLLOUT, RemainingMs()))
      return Fail();
  }

  std::string Got;
  while (!B.nextLine(Got)) {
    if (!waitFor(S.Fd, POLLIN, RemainingMs()))
      return Fail();
    const IoResult R = B.fill();
    if (R == IoResult::Closed)
      return Fail();
    if (R == IoResult::Eof) {
      // Buffered lines stay valid past EOF; drain before giving up.
      if (B.nextLine(Got))
        break;
      return Fail();
    }
  }

  // Correlate: one request in flight per connection, so the reply must
  // carry our id; anything else means the stream is out of sync.
  const JsonParseResult J = parseJson(Got);
  if (!J.ok() || !J.Value.isObject())
    return Fail();
  const JsonValue *Id = J.Value.field("id");
  if (!Id || !Id->isIntegral() || Id->asInt() != WantId)
    return Fail();
  Response = std::move(Got);
  return true;
}

namespace {

void recordLatency(std::mutex &M, std::vector<uint64_t> &Window, size_t &Next,
                   uint64_t Micros) {
  constexpr size_t WindowCap = 128;
  std::lock_guard<std::mutex> Lock(M);
  if (Window.size() < WindowCap) {
    Window.push_back(Micros);
  } else {
    Window[Next] = Micros;
    Next = (Next + 1) % WindowCap;
  }
}

uint64_t latencyP50(std::mutex &M, const std::vector<uint64_t> &Window) {
  std::vector<uint64_t> Copy;
  {
    std::lock_guard<std::mutex> Lock(M);
    Copy = Window;
  }
  if (Copy.empty())
    return 0;
  std::sort(Copy.begin(), Copy.end());
  return Copy[Copy.size() / 2];
}

/// True when a parsed response is a shed the client should not see from
/// the router — it retries locally instead.
bool isShedResponse(const JsonValue &V) {
  const JsonValue *E = V.field("error");
  if (!E || !E->isString())
    return false;
  const std::string &Code = E->asString();
  return Code == "queue_full" || Code == "shutting_down";
}

uint64_t u64Field(const JsonValue *Obj, const char *Name) {
  if (!Obj || !Obj->isObject())
    return 0;
  const JsonValue *F = Obj->field(Name);
  if (!F || !F->isIntegral() || F->asInt() < 0)
    return 0;
  return static_cast<uint64_t>(F->asInt());
}

} // namespace

ForwardResult Router::forward(const std::string &Line, const Request &R) {
  ForwardResult FR;
  if (Ring.empty())
    return FR;
  const uint64_t Key = routeKey(R);
  const std::string &Primary = Ring.lookup(Key);
  const std::string &Backup = Ring.lookupSuccessor(Key, Primary);
  const std::string *Order[2] = {&Primary, &Backup};
  const size_t Tries = Backup == Primary ? 1 : 2;

  for (size_t I = 0; I < Tries; ++I) {
    Shard &S = shardFor(*Order[I]);
    const auto Start = std::chrono::steady_clock::now();
    std::string Resp;
    if (!roundTrip(S, Line, R.Id, Resp)) {
      S.Errors.fetch_add(1, std::memory_order_relaxed);
      continue; // Shard down: the ring successor is the failover target.
    }
    const JsonParseResult J = parseJson(Resp);
    if (!J.ok() || !J.Value.isObject()) {
      S.Errors.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> Lock(S.M);
      closeShardLocked(S);
      continue;
    }
    if (isShedResponse(J.Value)) {
      // A loaded shard sheds; the local fallback absorbs the work rather
      // than cascading the retry storm to the next shard.
      S.Shed.fetch_add(1, std::memory_order_relaxed);
      FR.Shed = true;
      return FR;
    }
    const uint64_t Micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count();
    recordLatency(S.LatM, S.LatWindow, S.LatNext, Micros);
    S.Forwarded.fetch_add(1, std::memory_order_relaxed);
    FR.Answered = true;
    FR.Response = std::move(Resp);
    FR.ShardAddress = S.Address;
    return FR;
  }
  return FR;
}

std::vector<ShardClusterStat> Router::clusterProbe() {
  std::vector<ShardClusterStat> Rows;
  Rows.reserve(Shards.size());
  for (auto &SP : Shards) {
    Shard &S = *SP;
    ShardClusterStat Row;
    Row.Address = S.Address;
    Row.Forwarded = S.Forwarded.load(std::memory_order_relaxed);
    Row.Errors = S.Errors.load(std::memory_order_relaxed);
    Row.Shed = S.Shed.load(std::memory_order_relaxed);
    Row.ForwardP50Micros = latencyP50(S.LatM, S.LatWindow);

    std::string Resp;
    if (roundTrip(S, "{\"id\":0,\"op\":\"stats\"}", 0, Resp)) {
      const JsonParseResult J = parseJson(Resp);
      if (J.ok() && J.Value.isObject()) {
        Row.Reachable = true;
        Row.Requests = u64Field(&J.Value, "requests");
        Row.CompileHits = u64Field(J.Value.field("compile_cache"), "hits");
        Row.CompileMisses =
            u64Field(J.Value.field("compile_cache"), "misses");
        Row.SimHits = u64Field(J.Value.field("sim_cache"), "hits");
        Row.SimMisses = u64Field(J.Value.field("sim_cache"), "misses");
        Row.P50Micros = u64Field(J.Value.field("latency_us"), "p50");
      }
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}
